//! Byte-memory edge regressions: zero-size allocations, one-past-the-end
//! pointers, byte-precise partial-initialization diagnostics, and the
//! *ordering* of misalignment detection (at the pointer conversion, not
//! the eventual access). Each pin here came out of reviewing the fuzz
//! generator's boundary cases against §6.5.6, §6.2.6.1 and §6.3.2.3.

use cundef_semantics::eval::{Interp, Limits, Outcome};
use cundef_semantics::parser::parse;
use cundef_ub::UbKind;

fn run(src: &str) -> Outcome {
    let unit = parse(src).unwrap_or_else(|e| panic!("{src:?} failed to parse: {e}"));
    Interp::new(&unit, Limits::default()).run_main()
}

/// The UB kind and detail text, or a panic when execution survives.
fn ub_of(src: &str) -> (UbKind, String) {
    match run(src) {
        Outcome::Undefined(e) => (e.kind(), e.detail().unwrap_or_default().to_string()),
        other => panic!("{src:?}: expected UB, got {other:?}"),
    }
}

fn exit_of(src: &str) -> i64 {
    match run(src) {
        Outcome::Completed(e) => e,
        other => panic!("{src:?}: expected completion, got {other:?}"),
    }
}

#[test]
fn malloc_zero_yields_a_usable_but_unreadable_pointer() {
    // malloc(0) returns a distinct non-null pointer (this
    // implementation's choice under §7.22.3:1): comparing it, adding 0,
    // and freeing it are all defined…
    assert_eq!(
        exit_of(
            "int main(void) { char *p = malloc(0); \
             int ok = (p != 0) && (p + 0 == p); free(p); return ok; }"
        ),
        1
    );
    // …but every access is out of bounds of the zero-byte object,
    assert_eq!(
        ub_of("int main(void) { char *p = malloc(0); return *p; }").0,
        UbKind::OutOfBoundsRead
    );
    // and `p + 1` steps past the (already end-of-object) pointer —
    // arithmetic UB before any access happens (§6.5.6:8).
    assert_eq!(
        ub_of("int main(void) { char *p = malloc(0); char *q = p + 1; return q == p; }").0,
        UbKind::PointerArithmeticOutOfBounds
    );
}

#[test]
fn one_past_the_end_may_be_formed_but_not_loaded() {
    // Forming `a + 4` on int a[4] is defined, as is coming back down.
    assert_eq!(
        exit_of(
            "int main(void) { int a[4]; a[3] = 9; \
             int *p = a + 4; return *(p - 1); }"
        ),
        9
    );
    // Loading through the one-past-the-end pointer is the read UB, with
    // the report naming the precise byte span.
    let (kind, detail) = ub_of(
        "int main(void) { int a[4]; a[0] = 1; a[1] = 1; a[2] = 1; a[3] = 1; \
         return *(a + 4); }",
    );
    assert_eq!(kind, UbKind::OutOfBoundsRead);
    assert!(
        detail.contains("read of 4 byte(s) at byte offset 16"),
        "imprecise out-of-bounds report: {detail:?}"
    );
    // One past the end of the *last* element via an element pointer is
    // the same boundary.
    assert_eq!(
        ub_of("int main(void) { int a[2]; a[0] = 5; a[1] = 6; int *p = &a[1]; return p[1]; }").0,
        UbKind::OutOfBoundsRead
    );
}

#[test]
fn char_sweep_of_a_partially_initialized_object_names_the_first_bad_byte() {
    // Initialize bytes 0 and 1 of an 8-byte long, then load the whole
    // object: the report must say *which* byte of the read was
    // indeterminate — byte 2, read-relative.
    let (kind, detail) = ub_of(
        "int main(void) { long x; \
         ((char *)&x)[0] = 1; ((char *)&x)[1] = 2; \
         long y = x; return (int)y; }",
    );
    assert_eq!(kind, UbKind::ReadIndeterminate);
    assert!(
        detail.contains("byte 2 of the 8-byte read"),
        "partial-init report lost byte precision: {detail:?}"
    );

    // A char sweep reading an untouched byte is a *wholly* indeterminate
    // 1-byte read — that gets the classic wording, not byte arithmetic.
    let (kind, detail) = ub_of(
        "int main(void) { long x; ((char *)&x)[0] = 1; \
         return ((char *)&x)[3]; }",
    );
    assert_eq!(kind, UbKind::ReadIndeterminate);
    assert!(
        detail.contains("indeterminate value"),
        "fully-uninit read should use the classic wording: {detail:?}"
    );

    // Byte indices in the report are read-relative, not object-relative:
    // reading a[2] (object bytes 8..12) with only object byte 8 written
    // names byte 1 — the second byte *of the read*.
    let (kind, detail) = ub_of(
        "int main(void) { int a[4]; a[0] = 0; \
         ((char *)a)[8] = 5; \
         return a[2]; }",
    );
    assert_eq!(kind, UbKind::ReadIndeterminate);
    assert!(
        detail.contains("byte 1 of the 4-byte read at byte offset 8"),
        "partial-init report not read-relative: {detail:?}"
    );

    // The sweep over the initialized prefix is defined and sees the
    // little-endian representation.
    assert_eq!(
        exit_of(
            "int main(void) { long x; \
             ((char *)&x)[0] = 7; ((char *)&x)[1] = 1; \
             return ((char *)&x)[0] + ((char *)&x)[1]; }"
        ),
        8
    );
}

#[test]
fn bool_trap_representation_read_is_flagged() {
    // Found by the fuzzer (seed 42 case 121): planting 15 in a _Bool's
    // byte through a char lvalue, then reading the _Bool, made the
    // evaluator mask to the value bit (exit 1) while the gcc binary
    // returned the raw byte — an exit mismatch on a program the sweep
    // believed was defined. §6.2.6.1:5: the representation is a trap;
    // the read is the UB.
    let (kind, detail) = ub_of(
        "int main(void) { _Bool b = 0; \
         ((unsigned char *)&b)[0] = 15; \
         return b; }",
    );
    assert_eq!(kind, UbKind::ReadIndeterminate);
    assert!(
        detail.contains("trap representation"),
        "trap read should be named as such: {detail:?}"
    );
    // 0 and 1 are the two valid representations — planting them
    // byte-wise is defined and reads back exactly.
    assert_eq!(
        exit_of(
            "int main(void) { _Bool b = 0; \
             ((unsigned char *)&b)[0] = 1; \
             return b; }"
        ),
        1
    );
}

#[test]
fn misalignment_is_reported_at_the_cast_not_the_access() {
    // §6.3.2.3:7 makes the *conversion* itself undefined; the engine
    // must therefore report the misaligned cast even though the program
    // never dereferences the pointer…
    let (kind, detail) = ub_of(
        "int main(void) { char buf[8]; buf[1] = 0; \
         int *p = (int *)(buf + 1); return p == 0; }",
    );
    assert_eq!(kind, UbKind::MisalignedAccess);
    assert!(
        detail.contains("converted to"),
        "misalignment should be attributed to the conversion: {detail:?}"
    );
    // …which also means the cast-UB preempts the access-UB the
    // dereference would have raised (wrong effective type on the char
    // buffer): cast first, so MisalignedAccess is the verdict even with
    // a dereference present.
    assert_eq!(
        ub_of(
            "int main(void) { char buf[8]; buf[1] = 0; \
             return *(int *)(buf + 1); }"
        )
        .0,
        UbKind::MisalignedAccess
    );
    // A *suitably aligned* reinterpretation of an int array through a
    // round-tripped char pointer is defined (§6.3.2.3:7 allows the
    // round trip; the effective type matches).
    assert_eq!(
        exit_of(
            "int main(void) { int a[2]; a[0] = 3; a[1] = 4; \
             char *c = (char *)a; int *p = (int *)(c + 4); return *p; }"
        ),
        4
    );
}
