//! Differential tests: the translation-time constant engine and the
//! run-time evaluator must agree on every mixed-width expression — same
//! value, same type, same verdict. The two share one arithmetic core
//! (`consteval::arith`), and this suite is what keeps that sharing
//! honest: if either phase ever grows a private arithmetic path, a
//! divergence shows up here.

use cundef_semantics::ast::{ExprId, Stmt};
use cundef_semantics::consteval::{const_eval, ConstStop};
use cundef_semantics::ctype::{CInt, IntTy};
use cundef_semantics::eval::{Interp, Limits, Outcome};
use cundef_semantics::parser::parse;
use cundef_ub::UbKind;

/// Parse `int main(void) { <expr>; return 0; }` and return the unit plus
/// the expression statement's id.
fn parse_expr(expr: &str) -> (cundef_semantics::ast::TranslationUnit, ExprId) {
    let unit = parse(&format!("int main(void) {{ {expr}; return 0; }}"))
        .unwrap_or_else(|e| panic!("{expr:?} failed to parse: {e}"));
    let main = unit.function_named("main").expect("main");
    let Stmt::Expr(e) = unit.stmt(main.body[0]) else {
        panic!("{expr:?}: expected an expression statement");
    };
    let (e, _) = (*e, ());
    (unit, e)
}

/// The constant-expression verdict for `expr`.
fn translation_verdict(expr: &str) -> Result<CInt, ConstStop> {
    let (unit, e) = parse_expr(expr);
    const_eval(&unit, e)
}

/// The run-time verdict for `expr`, evaluated as a full expression
/// statement: `Ok(())` when execution survives it, `Err(kind)` when it
/// is the undefined operation.
fn execution_verdict(expr: &str) -> Result<(), UbKind> {
    let (unit, _) = parse_expr(expr);
    match Interp::new(&unit, Limits::default()).run_main() {
        Outcome::Completed(0) => Ok(()),
        Outcome::Undefined(e) => Err(e.kind()),
        other => panic!("{expr:?}: unexpected outcome {other:?}"),
    }
}

/// Render `v` as a C constant of exactly its own type. Promoted
/// arithmetic never yields a type below int, so a suffix always exists.
fn literal_of(v: CInt) -> String {
    let suffix = match v.ty {
        IntTy::Int => "",
        IntTy::UInt => "u",
        IntTy::Long => "L",
        IntTy::ULong => "uL",
        IntTy::LongLong => "LL",
        IntTy::ULongLong => "uLL",
        other => panic!("arithmetic result has sub-int type {other}"),
    };
    let m = v.math();
    if m < 0 {
        // Negative literals do not exist in C; spell the value as an
        // expression of the same type and value.
        format!("(0{suffix} - {}{suffix})", -m)
    } else {
        format!("{m}{suffix}")
    }
}

include!("shared/table.rs");

#[test]
fn both_phases_agree_on_every_table_entry() {
    for expr in TABLE {
        let translation = translation_verdict(expr);
        let execution = execution_verdict(expr);
        match (&translation, &execution) {
            (Ok(_), Ok(())) => {}
            (Err(ConstStop::Ub { kind, .. }), Err(dyn_kind)) => {
                assert_eq!(kind, dyn_kind, "{expr:?}: phases disagree on the UB kind");
            }
            other => panic!("{expr:?}: phases disagree: {other:?}"),
        }
    }
}

#[test]
fn constant_values_match_dynamic_evaluation_bit_for_bit() {
    let mut checked = 0;
    for expr in TABLE {
        let Ok(v) = translation_verdict(expr) else {
            continue;
        };
        // Ask the evaluator to compare the live expression against a
        // literal of the folded value *and* a type-witness: equality
        // after conversion plus agreement of sizeof pins both the value
        // and the width.
        let lit = literal_of(v);
        let src = format!(
            "int main(void) {{ \
               if (({expr}) == {lit} && sizeof({expr}) == sizeof({lit})) return 42; \
               return 7; }}"
        );
        let unit = parse(&src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        let outcome = Interp::new(&unit, Limits::default()).run_main();
        assert_eq!(
            outcome.exit_code(),
            Some(42),
            "{expr:?}: dynamic value/type diverges from constant fold \
             (expected {lit} of type {}), outcome {outcome:?}",
            v.ty
        );
        checked += 1;
    }
    assert!(checked >= 25, "only {checked} constant entries checked");
}

#[test]
fn acceptance_regressions_from_the_issue() {
    // Unsigned wrap is defined — exit-code checked end to end.
    let unit = parse(
        "int main(void) { unsigned int u = 4294967295u; u = u + 1u; return u == 0u ? 0 : 1; }",
    )
    .unwrap();
    assert_eq!(
        Interp::new(&unit, Limits::default()).run_main().exit_code(),
        Some(0)
    );
    // INT_MIN % -1 is DivisionOverflow in both phases.
    assert_eq!(
        execution_verdict("(-2147483647 - 1) % -1"),
        Err(UbKind::DivisionOverflow)
    );
    assert!(matches!(
        translation_verdict("(-2147483647 - 1) % -1"),
        Err(ConstStop::Ub {
            kind: UbKind::DivisionOverflow,
            ..
        })
    ));
    // 1u << 31 defined vs 1 << 31 UB.
    assert!(execution_verdict("1u << 31").is_ok());
    assert_eq!(execution_verdict("1 << 31"), Err(UbKind::ShiftOverflow));
    // long shifts by 32..63 are defined at width 64 (63 keeps the value
    // unsigned to dodge the sign-bit overflow).
    assert!(execution_verdict("1L << 40").is_ok());
    assert!(execution_verdict("1uL << 63").is_ok());
    assert_eq!(execution_verdict("1L << 64"), Err(UbKind::ShiftTooFar));
}

#[test]
fn generated_expressions_agree_at_the_fixed_seed() {
    // The generator-backed mode: the fuzz crate's seeded constant-
    // expression generator feeds the *same* harness the hand-entered
    // table uses. The seed is fixed, so this is a deterministic suite,
    // not a fuzz run — `cundef fuzz` explores fresh seeds; this test
    // pins a slice of that space into `cargo test`.
    use cundef_fuzz::decision::DecisionSource;
    use cundef_fuzz::gen::const_expr;
    use cundef_fuzz::oracle::literal_of;
    use cundef_fuzz::rng::case_seed;

    let mut value_checked = 0;
    for i in 0..200u64 {
        let mut d = DecisionSource::from_seed(case_seed(0xD1FF, i));
        let expr = const_expr(&mut d, 4);

        // Phase-agreement check, identical to the hand-entered table.
        let translation = translation_verdict(&expr);
        let execution = execution_verdict(&expr);
        match (&translation, &execution) {
            (Ok(_), Ok(())) => {}
            (Err(ConstStop::Ub { kind, .. }), Err(dyn_kind)) => {
                assert_eq!(kind, dyn_kind, "{expr:?}: phases disagree on the UB kind");
            }
            other => panic!("generated case {i} {expr:?}: phases disagree: {other:?}"),
        }

        // Value/type witness for foldable entries, with the sign probe
        // the fuzz oracle adds (sizeof alone cannot tell int from
        // unsigned int).
        let Ok(v) = translation else { continue };
        let lit = literal_of(v);
        let src = format!(
            "int main(void) {{ \
               if ((({expr}) == ({lit})) && sizeof({expr}) == sizeof({lit}) \
                   && ((-1 < ({expr})) == (-1 < ({lit})))) return 42; \
               return 7; }}"
        );
        let unit = parse(&src).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        let outcome = Interp::new(&unit, Limits::default()).run_main();
        assert_eq!(
            outcome.exit_code(),
            Some(42),
            "generated case {i} {expr:?}: dynamic value/type diverges from \
             constant fold (expected {lit} of type {})",
            v.ty
        );
        value_checked += 1;
    }
    assert!(
        value_checked >= 80,
        "only {value_checked} generated entries reached the value check"
    );
}
