//! Engine parity: the bytecode VM must be observationally identical to
//! the tree-walking reference interpreter. Same [`Outcome`] variant,
//! same UB kind, same source location, same detail string, same
//! implementation-defined conversion notes — for every entry of the
//! shared differential table and for every example program in the
//! repository. The tree-walker is the reference semantics; any
//! divergence here is a bytecode compiler or VM bug by definition.

use std::fs;
use std::path::PathBuf;

use cundef_semantics::eval::{Engine, Interp, Limits, Outcome};
use cundef_semantics::parser::parse;

include!("shared/table.rs");

/// Run `src` under the given engine and return the outcome plus the
/// rendered note stream. Notes are compared through their `Debug`
/// rendering so the location and the exact message text both count.
fn run(src: &str, engine: Engine, what: &str) -> (Outcome, String) {
    let unit = parse(src).unwrap_or_else(|e| panic!("{what}: failed to parse: {e}"));
    let mut interp = Interp::with_engine(&unit, Limits::default(), engine);
    let outcome = interp.run_main();
    let notes = format!("{:?}", interp.notes());
    (outcome, notes)
}

/// Assert that both engines agree on `src`, byte for byte.
fn assert_parity(src: &str, what: &str) {
    let (tree_out, tree_notes) = run(src, Engine::Tree, what);
    let (vm_out, vm_notes) = run(src, Engine::Bytecode, what);
    assert_eq!(
        tree_out, vm_out,
        "{what}: engines disagree on the outcome\n--- source ---\n{src}"
    );
    assert_eq!(
        tree_notes, vm_notes,
        "{what}: engines disagree on implementation-defined notes\n--- source ---\n{src}"
    );
}

#[test]
fn every_table_entry_runs_identically_under_both_engines() {
    for expr in TABLE {
        // The same wrapping `differential.rs` uses: the expression as a
        // full expression statement of `main`.
        let src = format!("int main(void) {{ {expr}; return 0; }}");
        assert_parity(&src, &format!("table entry {expr:?}"));
    }
    assert!(TABLE.len() >= 58, "shared table shrank to {}", TABLE.len());
}

#[test]
fn every_example_program_runs_identically_under_both_engines() {
    let examples = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .join("examples");
    let mut paths: Vec<PathBuf> = fs::read_dir(&examples)
        .expect("examples directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 20,
        "only {} example programs found in {}",
        paths.len(),
        examples.display()
    );
    for path in &paths {
        let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_parity(&src, &path.display().to_string());
    }
}

#[test]
fn ub_diagnostics_match_across_engines_in_detail() {
    // A handful of programs whose diagnostics exercise detail strings,
    // notes, and locations beyond what the constant table reaches:
    // each must produce the identical UbError through both engines.
    const PROGRAMS: &[&str] = &[
        // flagship unsequenced side effect (Error 00016)
        "int main(void) { int x = 0; return x + (x = 1); }",
        // uninitialized read through a pointer
        "int main(void) { int x; int *p = &x; return *p; }",
        // out-of-bounds index on a fixed array
        "int main(void) { int a[3]; a[0] = 1; return a[3]; }",
        // use after lifetime end
        "int f(int *p) { return *p; }\n\
         int main(void) { int *q; { int x = 5; q = &x; } return f(q); }",
        // signed overflow in a compound assignment
        "int main(void) { int x = 2147483647; x += 1; return 0; }",
        // division by a variable zero (defeats constant folding)
        "int main(void) { int z = 0; return 1 / z; }",
        // dangling heap pointer
        "int main(void) { int *p = malloc(4); *p = 3; free(p); return *p; }",
        // conversion notes accumulate identically (implementation-defined
        // narrowing emits a note, not a UB stop)
        "int main(void) { int big = 70000; short s = big; return s == 4464 ? 0 : 1; }",
        // goto across iterations keeps locals' init state honest
        "int main(void) { int i = 0; int s = 0;\n\
         again: s = s + i; i = i + 1; if (i < 5) goto again;\n\
         return s == 10 ? 0 : 1; }",
    ];
    for src in PROGRAMS {
        assert_parity(src, "diagnostic program");
    }
}
