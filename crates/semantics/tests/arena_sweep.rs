//! Regressions for the recycling memory core and the fused byte-sweep
//! superinstruction: slab-slot recycling must never rewrite history
//! (stale references keep naming the *original* object, with its
//! original line), and the bulk sweep must be observationally identical
//! to the per-byte loop it replaces — same exit values, same notes,
//! same step accounting, same behavior when the step budget runs dry
//! mid-loop.

use cundef_semantics::eval::{Engine, Interp, Limits, Outcome};
use cundef_semantics::parser::parse;
use cundef_ub::UbKind;

/// Run `src` under `engine` with profiling on; return the outcome, the
/// rendered note stream, and the interpreter for profile inspection.
fn run_profiled(src: &str, engine: Engine, limits: Limits) -> (Outcome, String, Interp<'_>) {
    // Leak the unit so the Interp can be returned; tests are short-lived.
    let unit =
        Box::leak(Box::new(parse(src).unwrap_or_else(|e| {
            panic!("failed to parse: {e}\n--- source ---\n{src}")
        })));
    let mut interp = Interp::with_engine(unit, limits, engine);
    interp.enable_profiling();
    let outcome = interp.run_main();
    let notes = format!("{:?}", interp.notes());
    (outcome, notes, interp)
}

/// Assert both engines agree on outcome and notes; return the bytecode
/// run for profile assertions.
fn parity(src: &str, limits: Limits) -> (Outcome, Interp<'_>) {
    let (tree_out, tree_notes, _) = run_profiled(src, Engine::Tree, limits);
    let (vm_out, vm_notes, vm) = run_profiled(src, Engine::Bytecode, limits);
    assert_eq!(tree_out, vm_out, "engines disagree\n--- source ---\n{src}");
    assert_eq!(tree_notes, vm_notes, "notes diverge\n--- source ---\n{src}");
    (vm_out, vm)
}

/// Expect UB; return (kind, detail, line).
fn expect_ub(outcome: &Outcome, src: &str) -> (UbKind, String, u32) {
    match outcome {
        Outcome::Undefined(e) => (
            e.kind(),
            e.detail().unwrap_or_default().to_string(),
            e.loc().map(|l| l.line).unwrap_or(0),
        ),
        other => panic!("expected UB, got {other:?}\n--- source ---\n{src}"),
    }
}

#[test]
fn stale_heap_deref_names_the_original_object_after_slot_recycling() {
    // free() retires the slab slot; the next malloc recycles it (same
    // storage, bumped epoch). The dangling `*p` must still report the
    // *first* allocation — "heap object #1", the serial it was given at
    // birth — never the new occupant of the recycled slot.
    let src = "int main(void) {\n\
               \x20   int *p = malloc(4);\n\
               \x20   free(p);\n\
               \x20   int *q = malloc(4);\n\
               \x20   *q = 5;\n\
               \x20   return *p;\n\
               }";
    let (out, vm) = parity(src, Limits::default());
    let (kind, detail, line) = expect_ub(&out, src);
    assert_eq!(kind, UbKind::DeadObjectAccess);
    assert!(
        detail.contains("heap object #1"),
        "stale deref misnamed the object: {detail:?}"
    );
    assert_eq!(line, 6, "stale deref reported at the wrong line");
    // Prove the test actually exercised recycling: the second malloc
    // must have reused the retired slot, not grown the slab.
    let prof = vm.profile().expect("profiling enabled");
    assert!(
        prof.arena_recycles >= 1,
        "second malloc did not recycle the freed slot: {prof:?}"
    );
}

#[test]
fn stale_stack_deref_names_the_original_variable_after_slot_recycling() {
    // Same invariant for automatic storage: `b` reuses the slab slot
    // `a` retired at block exit, and the dangling pointer still names
    // `a`, at the line of the bad access.
    let src = "int main(void) {\n\
               \x20   int *p;\n\
               \x20   { int a = 1; p = &a; }\n\
               \x20   int b = 2;\n\
               \x20   return *p + b;\n\
               }";
    let (out, _) = parity(src, Limits::default());
    let (kind, detail, line) = expect_ub(&out, src);
    assert_eq!(kind, UbKind::DeadObjectAccess);
    assert!(
        detail.contains("`a`"),
        "stale deref misnamed the variable: {detail:?}"
    );
    assert_eq!(line, 5);
}

/// A canonical fusable fill loop plus its exact generic step cost.
const FILL_SRC: &str = "int main(void) {\n\
                        \x20   char buf[100];\n\
                        \x20   char *d = buf;\n\
                        \x20   for (int k = 0; k < 100; k++) d[k] = 7;\n\
                        \x20   return buf[0];\n\
                        }";

#[test]
fn fused_fill_sweep_charges_exactly_the_generic_loop_cost() {
    let (out, vm) = parity(FILL_SRC, Limits::default());
    assert_eq!(out, Outcome::Completed(7));
    let prof = vm.profile().expect("profiling enabled");
    assert!(prof.sweep_hits >= 1, "fill loop did not fuse: {prof:?}");
    assert_eq!(prof.sweep_fallbacks, 0);
    // Step neutrality, exact: `d[k] = 300` compiles to the very same
    // ops (only the constant differs) but the conversion note makes the
    // runtime precheck decline, so the generic per-byte loop runs. Its
    // step total must equal the fused run's charge to the last step.
    let fallback_src = FILL_SRC.replace("= 7", "= 300");
    let (out, _, generic) = run_profiled(&fallback_src, Engine::Bytecode, Limits::default());
    assert!(matches!(out, Outcome::Completed(_)));
    let gprof = generic.profile().expect("profiling enabled");
    assert_eq!(gprof.sweep_hits, 0, "noteful fill must not fuse: {gprof:?}");
    assert_eq!(
        prof.steps, gprof.steps,
        "bulk sweep changed the semantic step charge"
    );
}

#[test]
fn step_limit_abort_inside_a_fused_sweep_falls_back_cleanly() {
    // Measure the full cost, then set the budget so exhaustion lands in
    // the middle of the loop. The sweep's budget precheck must decline
    // (fallback, not partial bulk work), so the VM stops at the same
    // settle point its own generic loop would have — and the arena
    // stays consistent (debug assertions on slot retirement fire under
    // this test profile if it does not).
    let (_, _, full) = run_profiled(FILL_SRC, Engine::Bytecode, Limits::default());
    let total = full.profile().expect("profiling enabled").steps;
    assert!(total > 200, "fixture too cheap to abort mid-loop: {total}");
    let tight = Limits {
        max_steps: total / 2,
        ..Limits::default()
    };
    let (out, _, vm) = run_profiled(FILL_SRC, Engine::Bytecode, tight);
    match &out {
        Outcome::Unsupported { message, .. } => {
            assert!(
                message.contains("step limit"),
                "unexpected stop message: {message:?}"
            );
        }
        other => panic!("expected a step-limit stop, got {other:?}"),
    }
    let prof = vm.profile().expect("profiling enabled");
    assert!(
        prof.sweep_fallbacks >= 1,
        "sweep ran despite an exhausted step budget: {prof:?}"
    );
    assert_eq!(prof.sweep_hits, 0);
    // The tree engine also stops on the same budget (its work-unit
    // totals differ from compiled-op totals, so the stop locations are
    // engine-specific — what matters is that both refuse to go on).
    let (tree_out, _, _) = run_profiled(FILL_SRC, Engine::Tree, tight);
    assert!(
        matches!(tree_out, Outcome::Unsupported { .. }),
        "tree engine ran past the budget: {tree_out:?}"
    );
    // Exactness across the whole budget range: `d[k] = 300` compiles
    // to the identical ops but always takes the generic loop (the
    // conversion note vetoes the bulk path), so for every budget the
    // fusable program must stop — or complete — exactly where its
    // generic twin does.
    let generic_src = FILL_SRC.replace("= 7", "= 300");
    for budget in [total / 2, total * 3 / 4, total - 1, total, total + 1] {
        let limits = Limits {
            max_steps: budget,
            ..Limits::default()
        };
        let (fused, _, _) = run_profiled(FILL_SRC, Engine::Bytecode, limits);
        let (generic, _, _) = run_profiled(&generic_src, Engine::Bytecode, limits);
        match (&fused, &generic) {
            (Outcome::Completed(7), Outcome::Completed(44)) => {}
            (
                Outcome::Unsupported {
                    message: fm,
                    loc: fl,
                },
                Outcome::Unsupported {
                    message: gm,
                    loc: gl,
                },
            ) => {
                assert_eq!((fm, fl), (gm, gl), "stop points diverge at budget {budget}");
            }
            other => panic!("budget {budget}: fused/generic outcomes diverge: {other:?}"),
        }
    }
}

#[test]
fn overlapping_copy_sweep_propagates_forward_like_the_per_byte_loop() {
    // d = buf + 1, s = buf: every iteration reads the byte the previous
    // iteration just wrote, so a memmove-style bulk copy would be
    // wrong. The fused sweep must reproduce the generic loop's forward
    // propagation exactly — buf[0] smeared across the whole buffer.
    let src = "int main(void) {\n\
               \x20   char buf[8];\n\
               \x20   buf[0] = 5; buf[1] = 1; buf[2] = 1; buf[3] = 1;\n\
               \x20   buf[4] = 1; buf[5] = 1; buf[6] = 1; buf[7] = 1;\n\
               \x20   char *d = buf + 1;\n\
               \x20   char *s = buf;\n\
               \x20   for (int k = 0; k < 7; k++) d[k] = s[k];\n\
               \x20   return buf[7];\n\
               }";
    let (out, vm) = parity(src, Limits::default());
    assert_eq!(
        out,
        Outcome::Completed(5),
        "overlap did not propagate forward"
    );
    let prof = vm.profile().expect("profiling enabled");
    assert!(
        prof.sweep_hits >= 1,
        "overlapping copy did not fuse: {prof:?}"
    );
}

#[test]
fn fill_that_would_emit_a_conversion_note_falls_back_per_byte() {
    // 300 does not fit in char: each store carries an
    // implementation-defined conversion note. The sweep precheck must
    // reject the bulk path so the generic loop emits every note, and
    // both engines' note streams must still match byte for byte.
    let src = "int main(void) {\n\
               \x20   char buf[4];\n\
               \x20   char *d = buf;\n\
               \x20   for (int k = 0; k < 4; k++) d[k] = 300;\n\
               \x20   return buf[3];\n\
               }";
    let (out, vm) = parity(src, Limits::default());
    assert_eq!(out, Outcome::Completed(44)); // 300 wraps to 44 as signed char
    let prof = vm.profile().expect("profiling enabled");
    assert_eq!(
        prof.sweep_hits, 0,
        "noteful fill must not take the bulk path"
    );
    assert!(
        prof.sweep_fallbacks >= 1,
        "fill loop was not even attempted: {prof:?}"
    );
}

#[test]
fn uninitialized_source_byte_diagnoses_identically_through_the_sweep() {
    // A hole in the source forces the runtime precheck to fall back,
    // and the generic loop must then report the indeterminate read with
    // the same kind/line under both engines.
    let src = "int main(void) {\n\
               \x20   char a[4]; char b[4];\n\
               \x20   a[0] = 1; a[1] = 2; a[3] = 4;\n\
               \x20   char *d = b; char *s = a;\n\
               \x20   for (int k = 0; k < 4; k++) d[k] = s[k];\n\
               \x20   return b[0];\n\
               }";
    let (out, _) = parity(src, Limits::default());
    let (kind, _, line) = expect_ub(&out, src);
    assert_eq!(kind, UbKind::ReadIndeterminate);
    assert_eq!(line, 5);
}

#[test]
fn churn_recycles_and_recursion_pools_frames() {
    // Allocation churn: after the first iteration every malloc should
    // be served from the retired slot queue.
    let churn = "int main(void) {\n\
                 \x20   int s = 0;\n\
                 \x20   for (int i = 0; i < 50; i++) {\n\
                 \x20       int *p = malloc(8); *p = i; s += *p; free(p);\n\
                 \x20   }\n\
                 \x20   return s & 255;\n\
                 }";
    let (out, vm) = parity(churn, Limits::default());
    assert!(matches!(out, Outcome::Completed(_)));
    let prof = vm.profile().expect("profiling enabled");
    assert!(
        prof.arena_recycles >= 40,
        "churn loop barely recycled: {prof:?}"
    );

    // Repeated non-nested calls: after the deepest first descent, every
    // frame should re-bind storage under the slot high-water mark.
    let calls = "int f(int n) { return n * 2; }\n\
                 int main(void) {\n\
                 \x20   int s = 0;\n\
                 \x20   for (int i = 0; i < 50; i++) s += f(i);\n\
                 \x20   return s & 255;\n\
                 }";
    let (out, vm) = parity(calls, Limits::default());
    assert!(matches!(out, Outcome::Completed(_)));
    let prof = vm.profile().expect("profiling enabled");
    assert!(
        prof.frame_pool_hits >= 40,
        "repeated calls missed the frame pool: {prof:?}"
    );
}

#[test]
fn self_tail_recursion_reuses_one_frame_and_diagnoses_depth_identically() {
    // A scalar self-tail call compiles to an in-place frame rebind.
    // Within the depth limit both engines complete with the same value;
    // past it, both must stop with the tree-walker's exact message —
    // the rebind carries the logical depth even though the bytecode
    // engine holds a single physical frame.
    let ok = "int down(int d, int acc) {\n\
              \x20   if (d == 0) return acc;\n\
              \x20   return down(d - 1, acc + d);\n\
              }\n\
              int main(void) { return down(100, 0) & 127; }";
    let (out, vm) = parity(ok, Limits::default());
    assert_eq!(out, Outcome::Completed((100 * 101 / 2) & 127));
    let prof = vm.profile().expect("profiling enabled");
    assert!(
        prof.op_counts.get("TailSelf").copied().unwrap_or(0) >= 100,
        "self-tail calls did not fuse: {prof:?}"
    );

    let deep = "int down(int d, int acc) {\n\
                \x20   if (d == 0) return acc;\n\
                \x20   return down(d - 1, acc + d);\n\
                }\n\
                int main(void) { return down(100000, 0) & 127; }";
    // A small limit keeps the tree-walker's native recursion shallow;
    // what matters is that both engines stop at the same logical depth.
    let limits = Limits {
        max_call_depth: 64,
        ..Limits::default()
    };
    let (out, _) = parity(deep, limits);
    match out {
        Outcome::Unsupported { ref message, .. } => {
            assert!(
                message.contains("call depth limit exceeded"),
                "wrong stop: {message:?}"
            );
        }
        other => panic!("expected a depth stop, got {other:?}"),
    }
}

#[test]
fn self_tail_rebind_converts_arguments_with_the_same_notes() {
    // Parameter rebinding is assignment to the parameter (§6.5.2.2:7):
    // a narrowing argument conversion must leave the same
    // implementation-defined note, at the same position, as the fresh
    // per-call binding the tree-walker performs.
    let src = "int f(char c, int d) {\n\
               \x20   if (d == 0) return c;\n\
               \x20   return f(c + 200, d - 1);\n\
               }\n\
               int main(void) { return f(0, 5) & 127; }";
    let (out, _) = parity(src, Limits::default());
    assert!(matches!(out, Outcome::Completed(_)), "{out:?}");
}
