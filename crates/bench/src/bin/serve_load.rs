//! `serve_load` — sustained-RPS load harness for `cundef serve`.
//!
//! Spawns the daemon with `--listen 127.0.0.1:0`, then drives it with a
//! closed-loop HTTP client fleet over keep-alive connections in three
//! phases:
//!
//! 1. **cold** — each distinct corpus program once, sequentially, on an
//!    empty cache: the cold-check baseline latency.
//! 2. **warm** — the same programs re-sent repeatedly on one
//!    connection: pure cache-hit latency, no queueing noise. The
//!    `warm_speedup` ratio (cold mean / warm mean) is the cache's
//!    headline number.
//! 3. **sustained** — `--requests` requests across `--connections`
//!    closed-loop worker threads with a hot/cold/mutated mix (~70%
//!    repeat traffic, ~30% never-seen-before mutations), recording
//!    wall-clock throughput and the p50/p99 latency quantiles.
//!
//! Results (plus the daemon's own `/stats` counters) land in
//! `BENCH_serve.json`. `--min-hits` and `--min-warm-speedup` turn the
//! run into a pass/fail gate for CI. The daemon is shut down via
//! `POST /shutdown` and must exit 0 for the run to pass.

use cundef_bench::corpus;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "\
serve_load — sustained-RPS load harness for `cundef serve`

USAGE:
    serve_load [OPTIONS]

OPTIONS:
    --bin PATH             cundef binary (default: target/release/cundef,
                           or the CUNDEF_BIN environment variable)
    --requests N           sustained-phase request count (default 400)
    --connections N        closed-loop client connections (default 4)
    --warm-iters N         warm-phase iterations per program (default 25)
    --out FILE             result file (default BENCH_serve.json)
    --min-hits N           fail unless the daemon reports >= N full cache
                           hits (default 1)
    --min-warm-speedup X   fail unless cold/warm latency ratio >= X
                           (default 0 = no gate)
    -h, --help             print this help";

/// Minimal JSON string escaping for request bodies.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One keep-alive HTTP/1.1 client connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A parsed response: status code, cache outcome header, body.
struct Reply {
    status: u16,
    cache: String,
    body: String,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Reply> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: cundef\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let mut content_length = 0usize;
        let mut cache = String::new();
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => content_length = value.trim().parse().unwrap_or(0),
                    "x-cundef-cache" => cache = value.trim().to_string(),
                    _ => {}
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Reply {
            status,
            cache,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }

    fn check(&mut self, source: &str, label: &str) -> std::io::Result<(Reply, Duration)> {
        let body = format!(
            "{{\"path\": {}, \"source\": {}}}",
            escape(label),
            escape(source)
        );
        let t = Instant::now();
        let reply = self.request("POST", "/check", &body)?;
        Ok((reply, t.elapsed()))
    }
}

/// Latency quantile in milliseconds from a sorted sample.
fn quantile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

fn mean_ms(samples: &[Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(Duration::as_secs_f64).sum::<f64>() / samples.len() as f64 * 1e3
}

/// Spawn the daemon and parse its bound address off stderr.
fn spawn_daemon(bin: &str) -> (Child, String) {
    let mut child = Command::new(bin)
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("serve_load: cannot spawn `{bin}`: {e}");
            std::process::exit(2);
        });
    let stderr = child.stderr.take().expect("stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).unwrap_or(0) > 0 {
        if let Some(rest) = line
            .trim()
            .strip_prefix("cundef serve: listening on http://")
        {
            addr = Some(rest.to_string());
            break;
        }
        line.clear();
    }
    let Some(addr) = addr else {
        eprintln!("serve_load: daemon never reported a listen address");
        let _ = child.kill();
        std::process::exit(2);
    };
    // Keep draining the daemon's stderr (the shutdown summary) so it
    // never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    (child, addr)
}

fn main() {
    let mut bin = std::env::var("CUNDEF_BIN").unwrap_or_else(|_| "target/release/cundef".into());
    let mut requests = 400usize;
    let mut connections = 4usize;
    let mut warm_iters = 25usize;
    let mut out_path = String::from("BENCH_serve.json");
    let mut min_hits = 1u64;
    let mut min_warm_speedup = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            "--bin" => bin = string_arg(&mut args, "--bin"),
            "--out" => out_path = string_arg(&mut args, "--out"),
            "--requests" => requests = num_arg(&mut args, "--requests").max(1),
            "--connections" => connections = num_arg(&mut args, "--connections").max(1),
            "--warm-iters" => warm_iters = num_arg(&mut args, "--warm-iters").max(1),
            "--min-hits" => min_hits = num_arg(&mut args, "--min-hits") as u64,
            "--min-warm-speedup" => {
                min_warm_speedup = string_arg(&mut args, "--min-warm-speedup")
                    .parse::<f64>()
                    .unwrap_or_else(|_| {
                        eprintln!("serve_load: `--min-warm-speedup` needs a number\n\n{USAGE}");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("serve_load: unknown option `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    // Heavy corpus programs: expensive enough to check that a cache hit
    // (a hash lookup + re-render) is an order of magnitude cheaper even
    // with the HTTP round trip on top.
    let programs: Vec<(String, String)> = vec![
        ("mem_churn".into(), corpus::mem_churn_loop(1500)),
        ("mem_sweep".into(), corpus::mem_sweep_loop(1500)),
        ("mem_heap".into(), corpus::mem_heap_loop(800)),
        ("mem_strcopy".into(), corpus::mem_strcopy_loop(800)),
        ("mem_typedmix".into(), corpus::mem_typedmix_loop(800)),
        ("call_loop".into(), corpus::call_loop(2000)),
    ];

    let (mut child, addr) = spawn_daemon(&bin);
    eprintln!(
        "serve_load: daemon at {addr}, {} corpus programs",
        programs.len()
    );

    // Phase 1: cold — every program once, empty cache.
    let mut client = Client::connect(&addr).expect("connect");
    let mut cold = Vec::new();
    for (name, src) in &programs {
        let (reply, dt) = client.check(src, &format!("{name}.c")).expect("cold check");
        assert_eq!(reply.status, 200, "cold check failed: {}", reply.body);
        cold.push(dt);
    }

    // Phase 2: warm — same programs, sequential: pure hit latency.
    let mut warm = Vec::new();
    for _ in 0..warm_iters {
        for (name, src) in &programs {
            let (reply, dt) = client.check(src, &format!("{name}.c")).expect("warm check");
            assert_eq!(reply.status, 200);
            assert_eq!(reply.cache, "hit", "warm request missed the cache");
            warm.push(dt);
        }
    }
    let cold_ms = mean_ms(&cold);
    let warm_ms = mean_ms(&warm);
    let warm_speedup = if warm_ms > 0.0 {
        cold_ms / warm_ms
    } else {
        0.0
    };
    eprintln!(
        "serve_load: cold {cold_ms:.3} ms/req, warm {warm_ms:.3} ms/req ({warm_speedup:.1}x)"
    );

    // Phase 3: sustained closed-loop load, hot/mutated mix.
    let programs = Arc::new(programs);
    let next = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::with_capacity(requests)));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..connections {
        let programs = Arc::clone(&programs);
        let next = Arc::clone(&next);
        let latencies = Arc::clone(&latencies);
        let addr = addr.clone();
        let total = requests as u64;
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            let mut local = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let (name, src) = &programs[(i as usize) % programs.len()];
                // ~30% of traffic is a never-seen-before mutation: a
                // unique trailing comment flips the content hash, so the
                // request takes the full cold path.
                let (reply, dt) = if i % 10 < 3 {
                    let mutated = format!("{src}// mutation {i}\n");
                    client
                        .check(&mutated, &format!("{name}-{i}.c"))
                        .expect("check")
                } else {
                    client.check(src, &format!("{name}.c")).expect("check")
                };
                assert_eq!(reply.status, 200);
                local.push(dt);
            }
            latencies.lock().expect("latencies poisoned").extend(local);
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = t0.elapsed();
    let mut sustained = latencies.lock().expect("latencies poisoned").clone();
    sustained.sort();
    let rps = sustained.len() as f64 / elapsed.as_secs_f64();
    let p50 = quantile_ms(&sustained, 0.50);
    let p99 = quantile_ms(&sustained, 0.99);
    eprintln!(
        "serve_load: sustained {} reqs over {} conns in {:.2}s — {rps:.0} req/s, p50 {p50:.3} ms, p99 {p99:.3} ms",
        sustained.len(),
        connections,
        elapsed.as_secs_f64()
    );

    // Daemon-side counters, then clean shutdown.
    let stats_body = client
        .request("GET", "/stats", "")
        .expect("stats")
        .body
        .trim()
        .to_string();
    let _ = client.request("POST", "/shutdown", "");
    let status = child.wait().expect("daemon wait");
    if !status.success() {
        eprintln!("serve_load: daemon exited with {status}");
        std::process::exit(1);
    }
    eprintln!("serve_load: daemon shut down cleanly");

    let full_hits = stats_body
        .split("\"full_hits\": ")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(0);

    let report = format!(
        "{{\n  \"bench\": \"serve_load\",\n  \"connections\": {connections},\n  \
         \"cold\": {{\"requests\": {}, \"mean_ms\": {cold_ms:.4}}},\n  \
         \"warm\": {{\"requests\": {}, \"mean_ms\": {warm_ms:.4}}},\n  \
         \"warm_speedup\": {warm_speedup:.2},\n  \
         \"sustained\": {{\"requests\": {}, \"elapsed_s\": {:.3}, \"rps\": {rps:.1}, \
         \"p50_ms\": {p50:.4}, \"p99_ms\": {p99:.4}, \"mutated_share\": 0.3}},\n  \
         \"server\": {stats_body}\n}}\n",
        cold.len(),
        warm.len(),
        sustained.len(),
        elapsed.as_secs_f64(),
    );
    std::fs::write(&out_path, &report).expect("write result file");
    eprintln!("serve_load: wrote {out_path}");

    let mut failed = false;
    if full_hits < min_hits {
        eprintln!("serve_load: FAIL — {full_hits} full cache hits < required {min_hits}");
        failed = true;
    }
    if min_warm_speedup > 0.0 && warm_speedup < min_warm_speedup {
        eprintln!(
            "serve_load: FAIL — warm speedup {warm_speedup:.2}x < required {min_warm_speedup:.2}x"
        );
        failed = true;
    }
    if rps <= 0.0 {
        eprintln!("serve_load: FAIL — zero throughput");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// Fetch a required string argument or die with usage.
fn string_arg(args: &mut impl Iterator<Item = String>, name: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("serve_load: `{name}` needs a value\n\n{USAGE}");
        std::process::exit(2);
    })
}

/// Fetch a required positive-integer argument or die with usage.
fn num_arg(args: &mut impl Iterator<Item = String>, name: &str) -> usize {
    string_arg(args, name).parse().unwrap_or_else(|_| {
        eprintln!("serve_load: `{name}` needs a positive integer\n\n{USAGE}");
        std::process::exit(2);
    })
}
