//! Minimal criterion-compatible benchmark harness.
//!
//! The container this workspace builds in has no network access, so the
//! real `criterion` crate cannot be vendored. This crate provides the
//! subset of criterion's API surface the workspace needs — `Criterion`,
//! `bench_function`, `Bencher::iter`, a `--test` smoke mode, and a
//! machine-readable JSON summary — with the same CLI contract, so the
//! `benches/` suite can be ported to the real criterion unchanged if the
//! dependency ever becomes available.
//!
//! Methodology (documented in `docs/PERFORMANCE.md`):
//!
//! 1. each benchmark is warmed up for [`Criterion::warmup_time`];
//! 2. the harness picks an iteration count per sample so one sample takes
//!    roughly [`Criterion::sample_time`];
//! 3. [`Criterion::samples`] samples are collected and summarized as
//!    median / mean / standard deviation of nanoseconds per iteration
//!    (the median is the headline number: it is robust to scheduler
//!    noise);
//! 4. `summary_json` renders all results, for `BENCH_eval.json`.

#![deny(missing_docs)]

pub mod corpus;

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Median of the per-sample ns/iter values.
    pub median_ns: f64,
    /// Mean of the per-sample ns/iter values.
    pub mean_ns: f64,
    /// Standard deviation of the per-sample ns/iter values.
    pub stddev_ns: f64,
    /// Number of samples collected.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Per-benchmark timing state handed to the closure under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `iters` times back to back.
    ///
    /// The closure's result is passed through [`black_box`] so the
    /// optimizer cannot delete the work.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver. Mirrors criterion's `Criterion` type.
pub struct Criterion {
    /// Smoke mode (`--test`): run each benchmark exactly once and record
    /// no timings. Used by CI so the suite cannot rot without paying the
    /// cost (or noise) of real measurement.
    pub test_mode: bool,
    /// Samples per benchmark.
    pub samples: usize,
    /// Warmup duration before sampling.
    pub warmup_time: Duration,
    /// Target wall-clock duration of one sample.
    pub sample_time: Duration,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: false,
            samples: 25,
            warmup_time: Duration::from_millis(300),
            sample_time: Duration::from_millis(20),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Build a driver from the process's command-line arguments.
    ///
    /// Recognizes criterion's `--test` flag (smoke mode) and ignores the
    /// `--bench` flag cargo passes to bench binaries. `--samples N`
    /// overrides the sample count.
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--samples" => {
                    if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                        c.samples = n;
                    }
                }
                _ => {}
            }
        }
        c
    }

    /// Run one benchmark: warm up, choose an iteration count, sample, and
    /// record the summary. In `--test` mode the closure runs once with a
    /// single iteration and nothing is recorded.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            eprintln!("{name}: ok (smoke)");
            return;
        }
        // Warmup, and estimate the cost of one iteration while at it.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup_time {
            f(&mut b);
            warmup_iters += 1;
        }
        let est_per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;
        let iters_per_sample =
            ((self.sample_time.as_nanos() as f64 / est_per_iter).round() as u64).max(1);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let var = per_iter_ns
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / per_iter_ns.len() as f64;
        let m = Measurement {
            name: name.to_string(),
            median_ns: median,
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            samples: per_iter_ns.len(),
            iters_per_sample,
        };
        eprintln!(
            "{name}: median {:.1} µs/iter (mean {:.1} µs, σ {:.1} µs, {} × {} iters)",
            m.median_ns / 1e3,
            m.mean_ns / 1e3,
            m.stddev_ns / 1e3,
            m.samples,
            m.iters_per_sample,
        );
        self.results.push(m);
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Render the recorded measurements as a JSON array (hand-rolled; the
    /// container has no serde).
    pub fn summary_json(&self) -> String {
        measurements_json(&self.results)
    }
}

/// Render a slice of measurements as a JSON array.
pub fn measurements_json(results: &[Measurement]) -> String {
    let mut out = String::from("[");
    for (i, m) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
             \"stddev_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
            m.name, m.median_ns, m.mean_ns, m.stddev_ns, m.samples, m.iters_per_sample
        );
    }
    out.push_str("\n  ]");
    out
}

/// Parse the `benchmarks` array out of a summary JSON file previously
/// written by this harness (used to compare against a recorded baseline).
///
/// This is a narrow parser for the exact shape `measurements_json`
/// produces, not a general JSON reader.
pub fn parse_measurements(json: &str) -> Vec<Measurement> {
    let mut out = Vec::new();
    for obj in json.split('{').skip(1) {
        let Some(body) = obj.split('}').next() else {
            continue;
        };
        let field = |key: &str| -> Option<&str> {
            let pat = format!("\"{key}\":");
            let rest = &body[body.find(&pat)? + pat.len()..];
            Some(rest.split([',', '\n']).next()?.trim())
        };
        let name = match field("name") {
            Some(v) => v.trim_matches([' ', '"']).to_string(),
            None => continue,
        };
        let num = |key: &str| field(key).and_then(|v| v.parse::<f64>().ok());
        let (Some(median_ns), Some(mean_ns), Some(stddev_ns)) =
            (num("median_ns"), num("mean_ns"), num("stddev_ns"))
        else {
            continue;
        };
        out.push(Measurement {
            name,
            median_ns,
            mean_ns,
            stddev_ns,
            samples: num("samples").unwrap_or(0.0) as usize,
            iters_per_sample: num("iters_per_sample").unwrap_or(0.0) as u64,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert_eq!(runs, 1);
        assert!(c.results().is_empty());
    }

    #[test]
    fn measurement_roundtrips_through_json() {
        let ms = vec![Measurement {
            name: "arith".into(),
            median_ns: 1234.5,
            mean_ns: 1300.0,
            stddev_ns: 42.0,
            samples: 25,
            iters_per_sample: 17,
        }];
        let parsed = parse_measurements(&measurements_json(&ms));
        assert_eq!(parsed, ms);
    }

    #[test]
    fn sampling_records_results() {
        let mut c = Criterion {
            samples: 3,
            warmup_time: Duration::from_millis(1),
            sample_time: Duration::from_millis(1),
            ..Criterion::default()
        };
        c.bench_function("spin", |b| b.iter(|| black_box(7u64).wrapping_mul(3)));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median_ns > 0.0);
    }
}
