//! Generated benchmark corpus: well-defined C programs in the supported
//! subset, scaled by a loop count `n`.
//!
//! Each generator stresses a different part of the evaluator hot path:
//! arithmetic and range checks, variable lookup under nested shadowing
//! scopes, array/pointer accesses with bounds and footprint tracking, and
//! function-call frames. All programs are free of undefined behavior (the
//! checker must run them to completion), keep every intermediate value in
//! `int` range, and stay comfortably under the default step limit.

/// One corpus entry: a stable name and the program source.
#[derive(Debug, Clone)]
pub struct Program {
    /// Stable benchmark name (`family/nNNN`).
    pub name: String,
    /// C source in the supported subset.
    pub source: String,
}

/// Tight arithmetic loop: binary operators, compound assignment, range
/// checks on every operation.
pub fn arith_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   s = (s + i * 3 - (i >> 1)) % 65536;\n\
         \x20   s = s ^ (i & 7);\n\
         \x20   s = (s << 1) % 32768 + (i % 5);\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// Nested blocks with shadowing declarations: stresses scope entry/exit,
/// object lifetimes, and name (slot) lookup.
pub fn scope_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   int x = i & 31;\n\
         \x20   {{\n\
         \x20     int y = x + 1;\n\
         \x20     {{\n\
         \x20       int x = y * 2;\n\
         \x20       s = (s + x + y) % 65536;\n\
         \x20     }}\n\
         \x20   }}\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// Array and pointer traffic: subscripts, pointer arithmetic, bounds
/// checks, and sequencing footprints on every access.
pub fn array_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 int a[16];\n\
         \x20 for (int i = 0; i < 16; i++) a[i] = i;\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   int *p = a;\n\
         \x20   s = (s + p[i & 15] + a[(i + 3) & 15]) % 32768;\n\
         \x20   a[(i + 1) & 15] = s & 1023;\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// Function calls in a loop: frame push/pop, parameter binding, return
/// plumbing.
pub fn call_loop(n: u32) -> String {
    format!(
        "int mix(int a, int b) {{\n\
         \x20 return (a * 2 + b) % 8191;\n\
         }}\n\
         int twice(int v) {{\n\
         \x20 return mix(v, v + 1);\n\
         }}\n\
         int main(void) {{\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   s = mix(s, twice(i & 1023));\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// The standard corpus at the scale used for `BENCH_eval.json`.
///
/// Loop counts are sized so one full check takes on the order of a
/// millisecond: long enough to dominate setup, short enough for many
/// samples, and far below the default 2M step limit.
pub fn standard() -> Vec<Program> {
    let n = 2000;
    vec![
        Program {
            name: format!("arith/n{n}"),
            source: arith_loop(n),
        },
        Program {
            name: format!("scopes/n{n}"),
            source: scope_loop(n),
        },
        Program {
            name: format!("arrays/n{n}"),
            source: array_loop(n),
        },
        Program {
            name: format!("calls/n{n}"),
            source: call_loop(n),
        },
    ]
}

/// Promotion-heavy loop: every operation involves sub-`int` operands
/// (`char`, `short`, `_Bool`), so each step exercises the integer
/// promotions plus a narrowing store conversion. All stores stay in
/// range (no implementation-defined wraps) and the program is free of
/// undefined behavior.
pub fn promotion_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 char c = 7;\n\
         \x20 short s = 11;\n\
         \x20 _Bool flip = 0;\n\
         \x20 int acc = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   c = (acc + i) % 100;\n\
         \x20   s = c * 3 + (i % 50);\n\
         \x20   flip = s & 1;\n\
         \x20   acc = (acc + c + s + flip) % 30000;\n\
         \x20 }}\n\
         \x20 return acc & 127;\n\
         }}\n"
    )
}

/// Mixed-width loop: `unsigned int` wraparound (defined, exercised on
/// purpose), `long` accumulation, per-width shifts, and conversions at
/// every store — the usual-arithmetic-conversion hot path.
pub fn mixed_width_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 unsigned int u = 2463534242u;\n\
         \x20 long l = 0;\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   u = u * 2654435761u + i;\n\
         \x20   l = (l + u) % 1000000007L;\n\
         \x20   s = (s + (l & 255) + (u >> 16)) % 65536;\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// The typed-scalar corpus for the `types/*` benchmark group: the
/// promotion/conversion machinery at the same scale as the standard
/// corpus, so `check/*` vs `types/*` isolates what the lattice costs.
pub fn typed() -> Vec<Program> {
    let n = 2000;
    vec![
        Program {
            name: format!("promos/n{n}"),
            source: promotion_loop(n),
        },
        Program {
            name: format!("mixed/n{n}"),
            source: mixed_width_loop(n),
        },
    ]
}

/// Byte-level memory traffic: a `char`-sweep copy of two `long` arrays
/// through cast pointers — the §6.5:7 character-escape hot path, one
/// byte per access, with per-byte init tracking on every store. Free of
/// undefined behavior.
pub fn mem_sweep_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 long src[8];\n\
         \x20 long dst[8];\n\
         \x20 for (int i = 0; i < 8; i++) src[i] = i * 1103515245L + 12345;\n\
         \x20 unsigned char *s = (unsigned char *)src;\n\
         \x20 unsigned char *d = (unsigned char *)dst;\n\
         \x20 long acc = 0;\n\
         \x20 for (int r = 0; r < {n}; r++) {{\n\
         \x20   for (int i = 0; i < 64; i++) d[i] = s[i];\n\
         \x20   acc = (acc + dst[r & 7]) % 65521;\n\
         \x20 }}\n\
         \x20 return acc & 127;\n\
         }}\n"
    )
}

/// Heap churn at byte granularity: `malloc(bytes)`/`free` per iteration
/// with typed stores imprinting the effective type, wide loads, and a
/// narrowing cast. Free of undefined behavior.
pub fn mem_heap_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   long *p = malloc(4 * sizeof(long));\n\
         \x20   for (int k = 0; k < 4; k++) p[k] = i + k;\n\
         \x20   s = (s + (int)p[i & 3]) % 65536;\n\
         \x20   free(p);\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// Mixed-width access to one buffer: byte stores through a `char` lvalue
/// followed by aligned whole-`long` loads through a cast-back pointer —
/// the aligned fast lane plus representation reassembly. Free of
/// undefined behavior.
pub fn mem_typedmix_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 long buf[4];\n\
         \x20 unsigned char *b = (unsigned char *)buf;\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   for (int k = 0; k < 32; k++) b[k] = (k + i) % 100;\n\
         \x20   long *lp = (long *)b;\n\
         \x20   s = (s + (int)(lp[0] & 255) + (int)(lp[3] & 255)) % 65536;\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// Pure allocator churn: a `malloc`/`free` pair per iteration with just
/// enough byte traffic to keep the block observably used. Unlike
/// [`mem_heap_loop`] the per-iteration typed work is tiny, so the
/// measurement isolates object-store allocation/retirement cost — the
/// residual the epoch/arena recycler targets. Free of undefined
/// behavior.
pub fn mem_churn_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   char *p = malloc(24);\n\
         \x20   p[0] = i % 100;\n\
         \x20   p[23] = (i + 3) % 100;\n\
         \x20   s = (s + p[0] + p[23]) % 65536;\n\
         \x20   free(p);\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// Char-wise buffer copy — the classic `strcpy`-shaped sweep: a counted
/// loop moving one byte per iteration between two `char` buffers through
/// `unsigned char *` cursors. The shape the fused byte-sweep
/// superinstruction recognizes; per-byte init tracking on every store
/// otherwise. Free of undefined behavior.
pub fn mem_strcopy_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 char src[64];\n\
         \x20 char dst[64];\n\
         \x20 for (int i = 0; i < 64; i++) src[i] = (i * 7) % 100;\n\
         \x20 int s = 0;\n\
         \x20 for (int r = 0; r < {n}; r++) {{\n\
         \x20   unsigned char *a = (unsigned char *)src;\n\
         \x20   unsigned char *b = (unsigned char *)dst;\n\
         \x20   for (int k = 0; k < 64; k++) b[k] = a[k];\n\
         \x20   s = (s + dst[r & 63]) % 65536;\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// The byte-model corpus for the `mem/*` benchmark group: sweep, heap,
/// mixed-width, allocator-churn, and string-copy traffic over the
/// byte-addressable memory core.
pub fn mem() -> Vec<Program> {
    vec![
        Program {
            name: "sweep/n150".into(),
            source: mem_sweep_loop(150),
        },
        Program {
            name: "heap/n400".into(),
            source: mem_heap_loop(400),
        },
        Program {
            name: "typedmix/n150".into(),
            source: mem_typedmix_loop(150),
        },
        Program {
            name: "churn/n1500".into(),
            source: mem_churn_loop(1500),
        },
        Program {
            name: "strcopy/n150".into(),
            source: mem_strcopy_loop(150),
        },
    ]
}

/// Deep self-recursion repeated many times: every level pushes a frame,
/// binds two parameters, and unwinds — the call-machinery residual the
/// pooled-frame path targets. Depth stays under the default
/// `max_call_depth` of 256. Free of undefined behavior.
pub fn recurse_loop(depth: u32, reps: u32) -> String {
    format!(
        "int down(int d, int acc) {{\n\
         \x20 if (d == 0) return acc % 8191;\n\
         \x20 return down(d - 1, (acc + d) % 8191);\n\
         }}\n\
         int main(void) {{\n\
         \x20 int s = 0;\n\
         \x20 for (int r = 0; r < {reps}; r++) {{\n\
         \x20   s = (s + down({depth}, r)) % 65536;\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// The call-machinery corpus for the `calls/*` benchmark group
/// (distinct from `check/calls`, the historic shallow-call program).
pub fn calls() -> Vec<Program> {
    vec![Program {
        name: "recurse/d200xr60".into(),
        source: recurse_loop(200, 60),
    }]
}

/// A `switch` with `n` cases plus labels and gotos: stresses the
/// analyzer's label pass (case constant-folding, duplicate detection)
/// and the evaluator's dispatch scan. Free of violations.
pub fn switch_heavy(n: u32) -> String {
    let mut src = String::from(
        "int main(void) {\n  int s = 0;\n  for (int i = 0; i < 64; i++) {\n    switch (i) {\n",
    );
    for k in 0..n {
        src.push_str(&format!("      case {k}: s = (s + {k}) % 8191; break;\n"));
    }
    src.push_str("      default: s = s % 8191;\n    }\n  }\n  return s & 127;\n}\n");
    src
}

/// `n` blocks, each declaring qualified objects, arrays with constant
/// sizes, and *static violations* — incompatible redeclarations and
/// writes to const — so the analyzer's type pass both walks and reports
/// at scale. The program is statically doomed on purpose: it benchmarks
/// the translation phase, never the evaluator.
pub fn static_violations(n: u32) -> String {
    let mut src = String::from("int scratch(void) {\n  int s = 0;\n");
    for k in 0..n {
        src.push_str(&format!(
            "  {{\n    const int c{k} = {k};\n    int a{k}[4 + {k}];\n    \
             int x{k} = c{k};\n    int *x{k};\n    s += a{k}[0] * 0 + x{k};\n  }}\n"
        ));
    }
    src.push_str("  return s;\n}\n");
    src
}

/// Deep expression trees over many call sites: stresses the analyzer's
/// bottom-up typing and call checking. Free of violations.
pub fn call_types(n: u32) -> String {
    let mut src = String::from(
        "int mix(int a, int b) { return (a + b) % 8191; }\n\
         int pick(int *p, int i) { return p[i & 7]; }\n\
         int main(void) {\n  int buf[8] = {1, 2, 3, 4, 5, 6, 7, 8};\n  int s = 0;\n",
    );
    for k in 0..n {
        src.push_str(&format!(
            "  s = mix(s, pick(buf, {k}) + mix({k}, s % 63));\n"
        ));
    }
    src.push_str("  return s & 127;\n}\n");
    src
}

/// The analyzer-facing corpus for the `analyze/*` benchmark group:
/// translation-phase throughput over clean and statically-violating
/// programs. These are *not* run by the evaluator benchmarks —
/// `static_violations` programs never execute at all.
pub fn analysis() -> Vec<Program> {
    vec![
        Program {
            name: "switch/n256".into(),
            source: switch_heavy(256),
        },
        Program {
            name: "violations/n200".into(),
            source: static_violations(200),
        },
        Program {
            name: "calltypes/n400".into(),
            source: call_types(400),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_stable() {
        let names: Vec<_> = standard().into_iter().map(|p| p.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names[0].starts_with("arith/"));
    }

    #[test]
    fn typed_corpus_names_are_unique_and_stable() {
        let names: Vec<_> = typed().into_iter().map(|p| p.name).collect();
        assert!(names[0].starts_with("promos/"));
        assert!(names[1].starts_with("mixed/"));
    }

    #[test]
    fn mem_corpus_names_are_unique_and_stable() {
        let names: Vec<_> = mem().into_iter().map(|p| p.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names.iter().any(|n| n.starts_with("sweep/")));
        assert!(names.iter().any(|n| n.starts_with("churn/")));
        assert!(names.iter().any(|n| n.starts_with("strcopy/")));
    }

    #[test]
    fn calls_corpus_names_are_unique_and_stable() {
        let names: Vec<_> = calls().into_iter().map(|p| p.name).collect();
        assert!(names.iter().any(|n| n.starts_with("recurse/")));
    }

    #[test]
    fn analysis_corpus_names_are_unique() {
        let mut names: Vec<_> = analysis().into_iter().map(|p| p.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn static_violation_generator_scales() {
        assert!(static_violations(3).matches("const int").count() == 3);
        assert!(switch_heavy(5).matches("case").count() == 5);
    }
}
