//! Generated benchmark corpus: well-defined C programs in the supported
//! subset, scaled by a loop count `n`.
//!
//! Each generator stresses a different part of the evaluator hot path:
//! arithmetic and range checks, variable lookup under nested shadowing
//! scopes, array/pointer accesses with bounds and footprint tracking, and
//! function-call frames. All programs are free of undefined behavior (the
//! checker must run them to completion), keep every intermediate value in
//! `int` range, and stay comfortably under the default step limit.

/// One corpus entry: a stable name and the program source.
#[derive(Debug, Clone)]
pub struct Program {
    /// Stable benchmark name (`family/nNNN`).
    pub name: String,
    /// C source in the supported subset.
    pub source: String,
}

/// Tight arithmetic loop: binary operators, compound assignment, range
/// checks on every operation.
pub fn arith_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   s = (s + i * 3 - (i >> 1)) % 65536;\n\
         \x20   s = s ^ (i & 7);\n\
         \x20   s = (s << 1) % 32768 + (i % 5);\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// Nested blocks with shadowing declarations: stresses scope entry/exit,
/// object lifetimes, and name (slot) lookup.
pub fn scope_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   int x = i & 31;\n\
         \x20   {{\n\
         \x20     int y = x + 1;\n\
         \x20     {{\n\
         \x20       int x = y * 2;\n\
         \x20       s = (s + x + y) % 65536;\n\
         \x20     }}\n\
         \x20   }}\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// Array and pointer traffic: subscripts, pointer arithmetic, bounds
/// checks, and sequencing footprints on every access.
pub fn array_loop(n: u32) -> String {
    format!(
        "int main(void) {{\n\
         \x20 int a[16];\n\
         \x20 for (int i = 0; i < 16; i++) a[i] = i;\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   int *p = a;\n\
         \x20   s = (s + p[i & 15] + a[(i + 3) & 15]) % 32768;\n\
         \x20   a[(i + 1) & 15] = s & 1023;\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// Function calls in a loop: frame push/pop, parameter binding, return
/// plumbing.
pub fn call_loop(n: u32) -> String {
    format!(
        "int mix(int a, int b) {{\n\
         \x20 return (a * 2 + b) % 8191;\n\
         }}\n\
         int twice(int v) {{\n\
         \x20 return mix(v, v + 1);\n\
         }}\n\
         int main(void) {{\n\
         \x20 int s = 0;\n\
         \x20 for (int i = 0; i < {n}; i++) {{\n\
         \x20   s = mix(s, twice(i & 1023));\n\
         \x20 }}\n\
         \x20 return s & 127;\n\
         }}\n"
    )
}

/// The standard corpus at the scale used for `BENCH_eval.json`.
///
/// Loop counts are sized so one full check takes on the order of a
/// millisecond: long enough to dominate setup, short enough for many
/// samples, and far below the default 2M step limit.
pub fn standard() -> Vec<Program> {
    let n = 2000;
    vec![
        Program {
            name: format!("arith/n{n}"),
            source: arith_loop(n),
        },
        Program {
            name: format!("scopes/n{n}"),
            source: scope_loop(n),
        },
        Program {
            name: format!("arrays/n{n}"),
            source: array_loop(n),
        },
        Program {
            name: format!("calls/n{n}"),
            source: call_loop(n),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_stable() {
        let names: Vec<_> = standard().into_iter().map(|p| p.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names[0].starts_with("arith/"));
    }
}
