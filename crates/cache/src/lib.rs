//! The content-hash incremental cache behind `cundef serve`.
//!
//! Real UB-checking traffic is repetitive: editors, CI sweeps, and
//! pre-commit hooks re-submit mostly-unchanged translation units (the
//! desktop-use-case study in PAPERS.md measures exactly this shape).
//! This crate turns that repetition into near-free responses with a
//! deliberately small design:
//!
//! - **Content addressing.** Entries are keyed by [`CacheKey`]: a
//!   64-bit FNV-1a hash of the source *bytes* ([`content_hash`]) plus a
//!   caller-chosen *options fingerprint* (which checking knobs — phase,
//!   engine — produced the value). The file's *path* is never part of
//!   the key: the same bytes under two names are the same translation
//!   unit, and the caller re-labels the cached value per request.
//! - **Bounded LRU.** [`LruCache`] holds at most `capacity` entries in
//!   an intrusive doubly-linked list over a slab, so `get`/`insert`
//!   are O(1) and a hot serve loop never rehashes under a lock longer
//!   than it must.
//! - **Telemetry, not guesswork.** Every lookup outcome is counted
//!   ([`CacheStats`]: hits, misses, insertions, evictions,
//!   invalidation-shaped replacements) and surfaced through the same
//!   `--stats` seam as the rest of the workspace.
//!
//! The cache is value-generic: `cundef serve` keeps two instances — a
//! *result* cache (fingerprint-keyed, memoizing the full `FileResult`)
//! and an *artifact* cache (fingerprint 0, memoizing the parsed +
//! resolved translation unit for warm partial hits when only the
//! options change). Thread safety is the caller's choice; the serve
//! daemon wraps each instance in a `Mutex`.

#![deny(missing_docs)]

use std::collections::HashMap;

/// 64-bit FNV-1a over the source bytes: the content half of a
/// [`CacheKey`].
///
/// FNV-1a is not cryptographic, and does not need to be: the cache is
/// a local performance layer, collisions only risk *speed* on
/// adversarial input to one's own checker, and the 64-bit space makes
/// accidental collisions vanishingly unlikely at any plausible
/// capacity.
///
/// # Examples
///
/// ```
/// use cundef_cache::content_hash;
/// assert_eq!(content_hash(b""), 0xcbf29ce484222325);
/// assert_ne!(content_hash(b"int main;"), content_hash(b"int main:"));
/// ```
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cache key: content hash of the source bytes plus the options
/// fingerprint that produced the cached value.
///
/// Two requests for the same bytes under different checking options
/// (`--phase`, `--engine`) must never cross-contaminate — they hash to
/// different keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`content_hash`] of the source bytes.
    pub content: u64,
    /// Caller-defined fingerprint of every checking option that can
    /// change the value (0 for option-independent artifacts).
    pub fingerprint: u64,
}

/// Cumulative lookup/eviction counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (first time for their key).
    pub insertions: u64,
    /// Entries displaced by capacity pressure (LRU order).
    pub evictions: u64,
    /// Inserts that replaced an existing entry for the same key (the
    /// invalidation shape: same key, recomputed value).
    pub replacements: u64,
}

/// Slab node of the intrusive LRU list.
struct Node<V> {
    key: CacheKey,
    value: V,
    /// Slab index of the next-more-recent node (`NIL` at the head).
    prev: u32,
    /// Slab index of the next-less-recent node (`NIL` at the tail).
    next: u32,
}

const NIL: u32 = u32::MAX;

/// A bounded LRU cache keyed by [`CacheKey`].
///
/// `get` refreshes recency; `insert` evicts the least-recently-used
/// entry once `capacity` is reached. All operations are O(1).
///
/// # Examples
///
/// ```
/// use cundef_cache::{CacheKey, LruCache};
/// let mut c: LruCache<&'static str> = LruCache::new(2);
/// let k = |n| CacheKey { content: n, fingerprint: 0 };
/// c.insert(k(1), "one");
/// c.insert(k(2), "two");
/// assert_eq!(c.get(&k(1)), Some(&"one")); // refreshes 1
/// c.insert(k(3), "three");                // evicts 2, the LRU entry
/// assert_eq!(c.get(&k(2)), None);
/// assert_eq!(c.stats().evictions, 1);
/// ```
pub struct LruCache<V> {
    map: HashMap<CacheKey, u32>,
    slab: Vec<Node<V>>,
    head: u32,
    tail: u32,
    capacity: usize,
    stats: CacheStats,
}

impl<V> LruCache<V> {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> LruCache<V> {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity.min(4096)),
            slab: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Unlink slab node `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.slab[i as usize];
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n as usize].prev = prev,
        }
    }

    /// Link slab node `i` at the most-recent end.
    fn link_front(&mut self, i: u32) {
        self.slab[i as usize].prev = NIL;
        self.slab[i as usize].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slab[h as usize].prev = i,
        }
        self.head = i;
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.stats.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.link_front(i);
                }
                Some(&self.slab[i as usize].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Look up `key` without touching recency or counters (telemetry
    /// probes must not skew the hit rate they report).
    pub fn peek(&self, key: &CacheKey) -> Option<&V> {
        self.map.get(key).map(|&i| &self.slab[i as usize].value)
    }

    /// Insert `value` under `key`, evicting the least-recently-used
    /// entry if the cache is full. Returns the evicted `(key, value)`
    /// when capacity pressure displaced one.
    pub fn insert(&mut self, key: CacheKey, value: V) -> Option<(CacheKey, V)> {
        if let Some(&i) = self.map.get(&key) {
            // Same key, new value: the invalidation-shaped replace.
            self.stats.replacements += 1;
            self.slab[i as usize].value = value;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return None;
        }
        self.stats.insertions += 1;
        let evicted = if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "full cache must have a tail");
            self.unlink(lru);
            let node = &mut self.slab[lru as usize];
            let old_key = node.key;
            self.map.remove(&old_key);
            node.key = key;
            let old_value = std::mem::replace(&mut node.value, value);
            self.map.insert(key, lru);
            self.link_front(lru);
            self.stats.evictions += 1;
            Some((old_key, old_value))
        } else {
            let i = u32::try_from(self.slab.len()).expect("cache capacity fits in u32");
            self.slab.push(Node {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, i);
            self.link_front(i);
            None
        };
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(content: u64, fp: u64) -> CacheKey {
        CacheKey {
            content,
            fingerprint: fp,
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c: LruCache<u32> = LruCache::new(4);
        assert_eq!(c.get(&k(1, 0)), None);
        c.insert(k(1, 0), 10);
        assert_eq!(c.get(&k(1, 0)), Some(&10));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn fingerprints_do_not_cross_contaminate() {
        let mut c: LruCache<&'static str> = LruCache::new(4);
        c.insert(k(7, 1), "phase=translation");
        c.insert(k(7, 2), "phase=all");
        assert_eq!(c.get(&k(7, 1)), Some(&"phase=translation"));
        assert_eq!(c.get(&k(7, 2)), Some(&"phase=all"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(k(1, 0), 1);
        c.insert(k(2, 0), 2);
        assert_eq!(c.get(&k(1, 0)), Some(&1)); // 2 is now LRU
        let evicted = c.insert(k(3, 0), 3);
        assert_eq!(evicted.map(|(key, v)| (key.content, v)), Some((2, 2)));
        assert_eq!(c.get(&k(2, 0)), None);
        assert_eq!(c.get(&k(1, 0)), Some(&1));
        assert_eq!(c.get(&k(3, 0)), Some(&3));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacement_refreshes_and_counts() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(k(1, 0), 1);
        c.insert(k(2, 0), 2);
        c.insert(k(2, 0), 22); // replace, not insert
        assert_eq!(c.stats().replacements, 1);
        assert_eq!(c.stats().evictions, 0);
        c.insert(k(3, 0), 3); // 1 is LRU now
        assert_eq!(c.get(&k(1, 0)), None);
        assert_eq!(c.get(&k(2, 0)), Some(&22));
    }

    #[test]
    fn capacity_one_still_answers() {
        let mut c: LruCache<u64> = LruCache::new(1);
        for i in 0..100 {
            c.insert(k(i, 0), i * 2);
            assert_eq!(c.get(&k(i, 0)), Some(&(i * 2)));
        }
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 99);
    }

    #[test]
    fn peek_does_not_skew_counters_or_recency() {
        let mut c: LruCache<u32> = LruCache::new(2);
        c.insert(k(1, 0), 1);
        c.insert(k(2, 0), 2);
        assert_eq!(c.peek(&k(1, 0)), Some(&1));
        let before = c.stats();
        assert_eq!((before.hits, before.misses), (0, 0));
        // 1 stays LRU despite the peek: inserting evicts it.
        c.insert(k(3, 0), 3);
        assert_eq!(c.peek(&k(1, 0)), None);
    }

    #[test]
    fn content_hash_is_byte_sensitive() {
        assert_ne!(content_hash(b"int x = 1;"), content_hash(b"int x = 2;"));
        assert_ne!(content_hash(b"ab"), content_hash(b"ba"));
        assert_eq!(content_hash(b"same"), content_hash(b"same"));
    }
}
