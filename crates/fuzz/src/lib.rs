//! Differential fuzzing for the `cundef` checker: a seeded csmith-lite
//! generator, five cross-checking oracles, a trace-level minimizer, and
//! a committed trophy case.
//!
//! The crate's unit of work is the **sweep** ([`run_sweep`]): generate
//! `count` programs deterministically from one seed, run each through
//! the oracle for its class, minimize every divergence, and render a
//! byte-for-byte reproducible report. Determinism is structural:
//!
//! - case `i` is generated from `case_seed(seed, i)`
//!   ([`rng::case_seed`]), a pure function of the sweep seed and the
//!   case index — never of thread scheduling, shard layout, or job
//!   count;
//! - the class of case `i` is `i % 3` ([`gen::Class::of_case`]), so
//!   every shard sees every class-specific oracle (the engine-parity
//!   and JSON-round-trip oracles, [`oracle::check_engines`] and
//!   [`oracle::check_json_roundtrip`], run on every case regardless of
//!   class);
//! - whether a defined case is cross-checked against a native compiler
//!   is again a pure per-index rule;
//! - findings are reported in case-index order no matter which worker
//!   found them first.
//!
//! Consequently `cundef fuzz --seed 42 --count 500` prints the same
//! bytes at `--jobs 1` and `--jobs 8`, and sharding the index space
//! across machines (`--shard i/m`) partitions the *same* program set.
//!
//! Findings are shrunk by [`minimize::minimize`] (replaying truncated /
//! zeroed decision traces, preserving the divergence category) and can
//! be committed under `trophy-case/` (see [`trophy`]), where
//! `crates/fuzz/tests/trophies.rs` replays them on every `cargo test`.

#![deny(missing_docs)]

pub mod decision;
pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod rng;
pub mod trophy;

use decision::DecisionSource;
use gen::{generate, Class, GenCase};
use oracle::{check, check_defined, check_engines, check_json_roundtrip, CrossCheck};
use rng::case_seed;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Configuration for one fuzzing sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The sweep seed; every case derives from it and its index.
    pub seed: u64,
    /// Number of case indices in the sweep (the full index space, even
    /// when sharded — a shard runs its slice of `0..count`).
    pub count: u64,
    /// `Some((i, m))` runs only indices with `index % m == i`.
    pub shard: Option<(u64, u64)>,
    /// Worker threads (as in `cundef --jobs`); 0 means one per core.
    pub jobs: usize,
    /// Cross-check eligible defined cases against a native compiler when
    /// one is on `PATH`.
    pub cross_check: bool,
    /// Directory to write minimized `.c` + `.expected` trophy pairs
    /// into; `None` skips writing (findings are still minimized and
    /// reported).
    pub trophy_dir: Option<PathBuf>,
}

impl SweepConfig {
    /// A sweep over `count` cases from `seed`, single shard, one job,
    /// no cross-check, no trophy writing.
    pub fn new(seed: u64, count: u64) -> SweepConfig {
        SweepConfig {
            seed,
            count,
            shard: None,
            jobs: 1,
            cross_check: false,
            trophy_dir: None,
        }
    }

    /// Does this sweep run case `index`?
    fn runs(&self, index: u64) -> bool {
        match self.shard {
            Some((i, m)) => index % m == i,
            None => true,
        }
    }
}

/// Whether case `index` of a sweep is cross-checked natively (given a
/// compiler and `--cross-check`): every 8th defined case. A pure
/// function of the index so shard layout cannot change program
/// semantics.
pub fn cross_check_case(index: u64) -> bool {
    Class::of_case(index) == Class::Defined && (index / 3).is_multiple_of(8)
}

/// One divergence found by a sweep, with its minimized reproduction.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The case index within the sweep.
    pub index: u64,
    /// The per-case seed (`case_seed(sweep_seed, index)`).
    pub case_seed: u64,
    /// The program class / oracle.
    pub class: Class,
    /// Stable divergence category (see
    /// [`oracle::Divergence::category`]).
    pub category: String,
    /// Human-readable description of the original divergence.
    pub describe: String,
    /// The minimized decision trace (replayable via
    /// [`DecisionSource::replay`]).
    pub min_trace: Vec<u64>,
    /// The regenerated minimized case.
    pub min_case: GenCase,
    /// Trophy stem if a pair was written (`--trophy-dir`).
    pub trophy: Option<String>,
}

/// The result of one sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// The sweep seed.
    pub seed: u64,
    /// The full index-space size.
    pub count: u64,
    /// How many cases this shard actually ran.
    pub checked: u64,
    /// How many of those were cross-checked against a native compiler.
    pub cross_checked: u64,
    /// Divergences in case-index order.
    pub findings: Vec<Finding>,
    /// Exit code of every passing defined case, keyed by index — the
    /// golden-snapshot data for oracle (c).
    pub exits: BTreeMap<u64, i64>,
}

impl SweepReport {
    /// Render the deterministic sweep report (identical across job
    /// counts; shards render their own slice).
    pub fn render(&self) -> String {
        let mut out = format!(
            "fuzz sweep: seed {} cases {} checked {} cross-checked {}\n",
            self.seed, self.count, self.checked, self.cross_checked
        );
        for f in &self.findings {
            out.push_str(&format!(
                "DIVERGENCE case {} [{}] {}: {}\n",
                f.index,
                f.class.name(),
                f.category,
                f.describe
            ));
            out.push_str(&format!(
                "  minimized to {} decisions{}\n",
                f.min_trace.len(),
                match &f.trophy {
                    Some(stem) => format!(", trophy {stem}"),
                    None => String::new(),
                }
            ));
        }
        out.push_str(&format!(
            "result: {} divergence(s) in {} case(s)\n",
            self.findings.len(),
            self.checked
        ));
        out
    }

    /// Render the defined-case exit log, one `case <i> exit <e>` line
    /// per passing defined case — compared against committed golden
    /// snapshots (`crates/fuzz/goldens/`).
    pub fn render_exits(&self) -> String {
        let mut out = String::new();
        for (i, e) in &self.exits {
            out.push_str(&format!("case {i} exit {e}\n"));
        }
        out
    }
}

/// Turn a divergence category into a filename-safe slug.
fn slug(category: &str) -> String {
    category
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Run one sweep. See the crate docs for the determinism contract.
pub fn run_sweep(cfg: &SweepConfig) -> SweepReport {
    let cc = if cfg.cross_check {
        CrossCheck::detect(std::env::temp_dir().join("cundef-fuzz"))
    } else {
        CrossCheck::off()
    };

    let jobs = if cfg.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.jobs
    };

    let cursor = AtomicU64::new(0);
    let findings: Mutex<Vec<Finding>> = Mutex::new(Vec::new());
    let exits: Mutex<BTreeMap<u64, i64>> = Mutex::new(BTreeMap::new());
    let checked = AtomicU64::new(0);
    let cross_checked = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs.max(1) {
            // The evaluator recurses through the AST once per C call
            // frame; minimized-but-legal deep call chains need more than
            // the 2 MiB default worker stack, so give workers the same
            // headroom a main thread gets.
            let worker = || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= cfg.count {
                    break;
                }
                if !cfg.runs(index) {
                    continue;
                }
                checked.fetch_add(1, Ordering::Relaxed);

                let class = Class::of_case(index);
                let seed = case_seed(cfg.seed, index);
                let mut d = DecisionSource::from_seed(seed);
                let case = generate(class, &mut d);
                let trace = d.trace().to_vec();
                let cross = cross_check_case(index) && cc.compiler.is_some();
                if cross {
                    cross_checked.fetch_add(1, Ordering::Relaxed);
                }

                // Defined passes record their exit for golden snapshots;
                // check() re-derives the same verdict for divergences.
                // Engine parity (oracle d) and the JSON round-trip
                // (oracle e) gate the shortcut: a case where the VM
                // disagrees with the tree-walker, or whose structured
                // rendering drifts, must reach the divergence path even
                // if the default engine happens to complete it.
                if class == Class::Defined
                    && check_engines(&case.source).is_ok()
                    && check_json_roundtrip(&case.source).is_ok()
                {
                    let this_cc = if cross { cc.clone() } else { CrossCheck::off() };
                    if let Ok(exit) = check_defined(&case.source, &this_cc) {
                        exits.lock().unwrap().insert(index, exit);
                        continue;
                    }
                    // Divergent: fall through to the shared path, which
                    // re-derives the same verdict for the report.
                }
                let div = match check(&case, &cc, cross) {
                    Ok(()) => continue,
                    Err(div) => div,
                };

                let category = div.category();
                let (min_trace, min_case) =
                    minimize::minimize(class, &trace, &category, &cc, cross);
                findings.lock().unwrap().push(Finding {
                    index,
                    case_seed: seed,
                    class,
                    category: category.clone(),
                    describe: div.describe(),
                    min_trace,
                    min_case,
                    trophy: None,
                });
            };
            std::thread::Builder::new()
                .stack_size(16 << 20)
                .spawn_scoped(scope, worker)
                .expect("spawn fuzz worker");
        }
    });

    let mut findings = findings.into_inner().unwrap();
    findings.sort_by_key(|f| f.index);

    // Trophy writing happens after the parallel phase, in index order,
    // so stems are deterministic too.
    if let Some(dir) = &cfg.trophy_dir {
        for f in &mut findings {
            let stem = format!("seed{}-case{}-{}", cfg.seed, f.index, slug(&f.category));
            let expected = trophy::render_expected(
                f.class,
                &f.category,
                f.min_case.expr.as_deref(),
                f.min_case.injected,
                &format!("seed {} case {}", cfg.seed, f.index),
                &f.describe,
            );
            match trophy::write_trophy(dir, &stem, &f.min_case.source, &expected) {
                Ok(_) => f.trophy = Some(stem),
                Err(e) => eprintln!("warning: could not write trophy {stem}: {e}"),
            }
        }
    }

    SweepReport {
        seed: cfg.seed,
        count: cfg.count,
        checked: checked.into_inner(),
        cross_checked: cross_checked.into_inner(),
        findings,
        exits: exits.into_inner().unwrap(),
    }
}
