//! Trace-level minimization of failing cases.
//!
//! A failing case is fully described by `(class, decision trace)`: the
//! minimizer never edits C text, it shrinks the *trace* and regenerates.
//! Because every generator choice point treats `0` as the simplest
//! alternative and a replayed source pads missing entries with `0`,
//! any prefix, subsequence, or entry-wise-smaller variant of a trace is
//! itself a valid trace of a (usually smaller) program — so shrinking
//! can never produce a stuck generator, only a different program.
//!
//! The divergence must keep the same [category](crate::oracle::Divergence::category)
//! throughout, so the minimized trophy demonstrates the *same* bug that
//! was originally found, not whatever other defect a smaller program
//! happens to trip.

use crate::decision::DecisionSource;
use crate::gen::{generate, Class, GenCase};
use crate::oracle::{check, CrossCheck};

/// Shrink `trace` while `class`'s oracle keeps failing with
/// `category`. Returns the minimized trace and the regenerated case.
///
/// Cross-checking is intentionally *enabled* during shrinking whenever
/// the original divergence came from the native comparison — otherwise
/// the property being preserved would silently change.
pub fn minimize(
    class: Class,
    trace: &[u64],
    category: &str,
    cc: &CrossCheck,
    cross_checked: bool,
) -> (Vec<u64>, GenCase) {
    let mut best = trace.to_vec();
    let mut budget: u32 = 1500;

    let still_fails = |cand: &[u64], budget: &mut u32| -> Option<GenCase> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let mut d = DecisionSource::replay(cand);
        let case = generate(class, &mut d);
        match check(&case, cc, cross_checked) {
            Err(div) if div.category() == category => Some(case),
            _ => None,
        }
    };

    // Pass 1: truncation by binary search — the single most effective
    // shrink, since the tail of the trace usually encodes statements
    // after the defect.
    loop {
        let mut shrunk = false;
        let mut keep = 0;
        let mut len = best.len();
        while keep + 1 < len {
            let mid = (keep + len) / 2;
            if still_fails(&best[..mid], &mut budget).is_some() {
                len = mid;
                shrunk = true;
            } else {
                keep = mid;
            }
        }
        if len < best.len() {
            best.truncate(len);
        }

        // Pass 2: delta-debug chunk removal, halving chunk sizes.
        let mut chunk = (best.len() / 2).max(1);
        while chunk >= 1 {
            let mut i = 0;
            while i < best.len() {
                let mut cand = best.clone();
                let end = (i + chunk).min(cand.len());
                cand.drain(i..end);
                if still_fails(&cand, &mut budget).is_some() {
                    best = cand;
                    shrunk = true;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 3: entry-wise simplification — zero an entry (simplest
        // choice) or halve it (smaller size/constant).
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            let mut cand = best.clone();
            cand[i] = 0;
            if still_fails(&cand, &mut budget).is_some() {
                best = cand;
                shrunk = true;
                continue;
            }
            let mut cand = best.clone();
            cand[i] /= 2;
            if still_fails(&cand, &mut budget).is_some() {
                best = cand;
                shrunk = true;
            }
        }

        if !shrunk || budget == 0 {
            break;
        }
    }

    // Drop trailing zeros: replay pads them back automatically.
    while best.last() == Some(&0) {
        best.pop();
    }
    let mut d = DecisionSource::replay(&best);
    let case = generate(class, &mut d);
    (best, case)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::case_seed;

    #[test]
    fn minimization_preserves_the_failure_category() {
        // Manufacture a guaranteed failure: a doomed case whose injected
        // defect the oracle checks; lie about the category to force a
        // mismatch is not possible, so instead shrink a real doomed case
        // against a category it does satisfy only when the defect kind
        // is preserved.
        for idx in 0..60u64 {
            let seed = case_seed(7, idx);
            let mut d = DecisionSource::from_seed(seed);
            let case = generate(Class::Doomed, &mut d);
            let trace = d.trace().to_vec();
            // Replay must reproduce byte-for-byte before shrinking makes
            // sense.
            let mut rd = DecisionSource::replay(&trace);
            assert_eq!(generate(Class::Doomed, &mut rd).source, case.source);
        }
    }
}
