//! Deterministic pseudo-randomness for the fuzzer.
//!
//! Everything the fuzzer does is a pure function of the sweep seed: each
//! case derives its own stream with [`case_seed`], so case `i` generates
//! the same program no matter how the sweep is sharded or how many
//! worker threads run it. The generator itself never calls this module
//! directly — it draws from a [`crate::decision::DecisionSource`], which
//! records every draw so a failing case can be replayed and shrunk.

/// SplitMix64 (Steele, Lea & Flood 2014): a tiny, full-period, splittable
/// generator. Not cryptographic, and deliberately dependency-free — the
/// whole point is bit-for-bit reproducibility across machines.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The per-case seed for case `index` of a sweep seeded with `seed`.
///
/// This is the sharding contract: a case's entire generation stream is a
/// function of `(seed, index)` alone, so `--shard 1/4` and an unsharded
/// run produce identical programs for the cases they share.
pub fn case_seed(seed: u64, index: u64) -> u64 {
    // One SplitMix64 step over a mix of both inputs; the golden-ratio
    // multiplier separates neighboring indices into distant streams.
    let mut rng = SplitMix64::new(seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn case_seeds_differ_across_indices() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            assert!(seen.insert(case_seed(42, i)), "collision at index {i}");
        }
    }
}
