//! The trophy case: minimized fuzz findings, committed forever.
//!
//! Every divergence the fuzzer finds is minimized and written as a pair
//! of files under `trophy-case/`:
//!
//! - `<stem>.c` — the minimized program, in the supported subset;
//! - `<stem>.expected` — a small `key: value` header recording which
//!   oracle found it, its status, and what the replay must observe.
//!
//! The replay contract (enforced by `crates/fuzz/tests/trophies.rs` on
//! every `cargo test`):
//!
//! - `status: fixed` — the oracle must now **pass** on the program; the
//!   trophy is a permanent regression test for the bug it once
//!   demonstrated (for `defined` trophies the recorded `exit:` code
//!   must also be reproduced).
//! - `status: known-failing` — the oracle must still **fail with the
//!   recorded category**. If the divergence stops reproducing, the
//!   replay fails loudly and tells the maintainer to flip the entry to
//!   `fixed` — a trophy is never allowed to rot silently in either
//!   direction.

use crate::gen::Class;
use crate::oracle::{check_const_expr, check_defined, check_doomed, CrossCheck, Divergence};
use cundef_ub::UbKind;
use std::path::{Path, PathBuf};

/// One trophy: a minimized finding and its replay expectations.
#[derive(Debug, Clone)]
pub struct Trophy {
    /// File stem (`t001-clean-exit`), for messages.
    pub stem: String,
    /// The minimized program.
    pub source: String,
    /// Which oracle found (and replays) it.
    pub class: Class,
    /// `true` for `status: fixed`, `false` for `status: known-failing`.
    pub fixed: bool,
    /// The divergence category recorded at find time (what a
    /// known-failing replay must still observe).
    pub category: Option<String>,
    /// For const-expr trophies: the expression under test.
    pub expr: Option<String>,
    /// For doomed trophies: the injected defect.
    pub injected: Option<UbKind>,
    /// For defined trophies: the expected evaluator exit code.
    pub exit: Option<i64>,
    /// Free-form provenance (`found: seed 42 case 17`).
    pub found: Option<String>,
    /// Free-form triage note.
    pub note: Option<String>,
}

/// Parse a `UbKind` from its `Debug` spelling by scanning the catalog's
/// kind list (no `FromStr` on the taxonomy).
fn kind_from_debug(s: &str) -> Option<UbKind> {
    cundef_ub::catalog()
        .iter()
        .filter_map(|e| e.detected_by)
        .chain(cundef_semantics::eval::detected_kinds().iter().copied())
        .find(|k| format!("{k:?}") == s)
}

impl Trophy {
    /// Load the trophy stored at `<dir>/<stem>.c` + `.expected`.
    pub fn load(dir: &Path, stem: &str) -> Result<Trophy, String> {
        let source = std::fs::read_to_string(dir.join(format!("{stem}.c")))
            .map_err(|e| format!("{stem}.c: {e}"))?;
        let meta = std::fs::read_to_string(dir.join(format!("{stem}.expected")))
            .map_err(|e| format!("{stem}.expected: {e}"))?;
        let mut class = None;
        let mut fixed = None;
        let mut category = None;
        let mut expr = None;
        let mut injected = None;
        let mut exit = None;
        let mut found = None;
        let mut note = None;
        for line in meta.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once(':') else {
                return Err(format!("{stem}.expected: malformed line `{line}`"));
            };
            let value = value.trim();
            match key.trim() {
                "oracle" => {
                    class = Some(
                        Class::from_name(value)
                            .ok_or_else(|| format!("{stem}.expected: unknown oracle `{value}`"))?,
                    )
                }
                "status" => {
                    fixed = Some(match value {
                        "fixed" => true,
                        "known-failing" => false,
                        other => return Err(format!("{stem}.expected: unknown status `{other}`")),
                    })
                }
                "category" => category = Some(value.to_string()),
                "expr" => expr = Some(value.to_string()),
                "injected" => {
                    injected = Some(
                        kind_from_debug(value)
                            .ok_or_else(|| format!("{stem}.expected: unknown UbKind `{value}`"))?,
                    )
                }
                "exit" => {
                    exit = Some(
                        value
                            .parse::<i64>()
                            .map_err(|e| format!("{stem}.expected: bad exit `{value}`: {e}"))?,
                    )
                }
                "found" => found = Some(value.to_string()),
                "note" => note = Some(value.to_string()),
                other => return Err(format!("{stem}.expected: unknown key `{other}`")),
            }
        }
        Ok(Trophy {
            stem: stem.to_string(),
            source,
            class: class.ok_or_else(|| format!("{stem}.expected: missing `oracle:`"))?,
            fixed: fixed.ok_or_else(|| format!("{stem}.expected: missing `status:`"))?,
            category,
            expr,
            injected,
            exit,
            found,
            note,
        })
    }

    /// Load every trophy in `dir`, sorted by stem. A missing directory
    /// is an empty trophy case, not an error.
    pub fn load_all(dir: &Path) -> Result<Vec<Trophy>, String> {
        let mut stems = Vec::new();
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => return Ok(Vec::new()),
        };
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(stem) = name.strip_suffix(".expected") {
                stems.push(stem.to_string());
            }
        }
        stems.sort();
        stems.iter().map(|s| Trophy::load(dir, s)).collect()
    }

    /// Run this trophy's oracle once and classify the result.
    fn run_oracle(&self) -> Result<Option<i64>, Divergence> {
        match self.class {
            Class::ConstExpr => {
                let expr = self
                    .expr
                    .as_deref()
                    .expect("const-expr trophies carry `expr:` (validated in replay)");
                check_const_expr(expr).map(|()| None)
            }
            Class::Doomed => {
                let injected = self
                    .injected
                    .expect("doomed trophies carry `injected:` (validated in replay)");
                check_doomed(&self.source, injected).map(|()| None)
            }
            Class::Defined => check_defined(&self.source, &CrossCheck::off()).map(Some),
        }
    }

    /// Replay the trophy per the contract in the module docs. `Ok(())`
    /// when the trophy's expectation holds.
    pub fn replay(&self) -> Result<(), String> {
        // Validate the per-class required fields up front so a malformed
        // entry fails with a message instead of a panic.
        match self.class {
            Class::ConstExpr if self.expr.is_none() => {
                return Err(format!("{}: const-expr trophy missing `expr:`", self.stem))
            }
            Class::Doomed if self.injected.is_none() => {
                return Err(format!("{}: doomed trophy missing `injected:`", self.stem))
            }
            _ => {}
        }
        let result = self.run_oracle();
        if self.fixed {
            match result {
                Ok(got) => {
                    if let (Some(want), Some(got)) = (self.exit, got) {
                        if want != got {
                            return Err(format!(
                                "{}: fixed trophy expected exit {want}, evaluator returned {got}",
                                self.stem
                            ));
                        }
                    }
                    Ok(())
                }
                Err(div) => Err(format!(
                    "{}: fixed trophy regressed — oracle fails again: {}",
                    self.stem,
                    div.describe()
                )),
            }
        } else {
            let want = self.category.as_deref().ok_or_else(|| {
                format!("{}: known-failing trophy missing `category:`", self.stem)
            })?;
            match result {
                Err(div) if div.category() == want => Ok(()),
                Err(div) => Err(format!(
                    "{}: known-failing trophy changed category: recorded `{want}`, now `{}` — re-triage",
                    self.stem,
                    div.category()
                )),
                Ok(_) => Err(format!(
                    "{}: known-failing trophy no longer reproduces — the bug appears fixed; \
                     flip `status:` to fixed (and record `exit:` for defined trophies)",
                    self.stem
                )),
            }
        }
    }
}

/// Render the `.expected` header for a fresh (known-failing) trophy.
pub fn render_expected(
    class: Class,
    category: &str,
    expr: Option<&str>,
    injected: Option<UbKind>,
    found: &str,
    note: &str,
) -> String {
    let mut out = String::from(
        "# cundef fuzz trophy — replayed by `cargo test -p cundef-fuzz` (tests/trophies.rs)\n",
    );
    out.push_str(&format!("oracle: {}\n", class.name()));
    out.push_str("status: known-failing\n");
    out.push_str(&format!("category: {category}\n"));
    if let Some(e) = expr {
        out.push_str(&format!("expr: {e}\n"));
    }
    if let Some(k) = injected {
        out.push_str(&format!("injected: {k:?}\n"));
    }
    out.push_str(&format!("found: {found}\n"));
    out.push_str(&format!("note: {note}\n"));
    out
}

/// Write a trophy pair into `dir`, creating it if needed.
pub fn write_trophy(
    dir: &Path,
    stem: &str,
    source: &str,
    expected: &str,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let c = dir.join(format!("{stem}.c"));
    std::fs::write(&c, source).map_err(|e| format!("{}: {e}", c.display()))?;
    let exp = dir.join(format!("{stem}.expected"));
    std::fs::write(&exp, expected).map_err(|e| format!("{}: {e}", exp.display()))?;
    Ok(c)
}
