//! The five cross-checking oracles.
//!
//! 1. **consteval-vs-eval** ([`check_const_expr`]) — fold the generated
//!    constant expression at translation time and evaluate it at run
//!    time; the phases must agree on *verdict* (defined vs which
//!    [`UbKind`]) and, when defined, on *value and type* bit-for-bit.
//!    The value/type comparison is itself performed by the evaluator:
//!    the expression is compared against a literal of the folded value
//!    with an equality + `sizeof` + signedness witness.
//! 2. **phase agreement** ([`check_doomed`]) — a program carrying an
//!    injected statically detectable defect must be flagged by
//!    `cundef-analysis`, and executing it anyway must *not* reach a
//!    clean exit (the paper's translation-phase semantics refuse such
//!    programs; an evaluator that runs one to completion has lost a
//!    defect the type system promised).
//! 3. **defined exit codes** ([`check_defined`]) — a UB-free-by-
//!    construction program must pass the translation phase with no
//!    findings, run to completion under the evaluator, and (when a C
//!    compiler is on `PATH` and cross-checking is requested) exit with
//!    the same status when compiled and executed natively.
//! 4. **engine parity** ([`check_engines`]) — every generated program,
//!    whatever its class, must produce the identical [`Outcome`] (same
//!    variant, UB kind, location, and detail text) and identical
//!    implementation-defined conversion notes under the tree-walking
//!    reference interpreter and the bytecode VM. The one masked
//!    difference is the step limit: the VM batches its step accounting,
//!    so a "step limit exceeded" stop on either side is a resource
//!    verdict, not a semantic one.
//! 5. **JSON round-trip** ([`check_json_roundtrip`]) — the structured
//!    renderer must agree with the human oracle on every generated
//!    program: building the [`FileResult`] the CLI would build,
//!    rendering it with the [`JsonRenderer`], and re-parsing the JSONL
//!    must reproduce the verdict and, for undefined programs, the
//!    finding's kind, code, line, column, and detail bit-for-bit. A
//!    drift here means `--format json` and `--format human` would tell
//!    two different stories about the same run.

use crate::gen::GenCase;
use cundef_analysis::analyze;
use cundef_semantics::ast::{ExprId, Stmt, TranslationUnit};
use cundef_semantics::consteval::{const_eval, ConstStop};
use cundef_semantics::ctype::{CInt, IntTy};
use cundef_semantics::eval::{Engine, Interp, Limits, Outcome};
use cundef_semantics::parser::parse;
use cundef_ub::json::Json;
use cundef_ub::render::{FileResult, JsonRenderer, Renderer, Verdict};
use cundef_ub::UbKind;

/// A divergence between two of the checker's views of one program — the
/// fuzzer's unit of failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The program does not parse, though the generator only emits the
    /// supported subset.
    ParseError(String),
    /// consteval and eval disagree on the verdict for a constant
    /// expression.
    VerdictMismatch {
        /// The translation-time verdict, rendered.
        translation: String,
        /// The run-time verdict, rendered.
        execution: String,
    },
    /// consteval refuses (`NotConst`) an expression that is an integer
    /// constant expression by construction (§6.6 gap).
    NotConst {
        /// Where the fold stopped.
        detail: String,
    },
    /// Both phases call the expression defined, but the run-time value
    /// or type differs from the translation-time fold.
    ValueMismatch {
        /// The folded value and type.
        folded: String,
        /// What the witness program observed.
        observed: String,
    },
    /// A statically doomed program that the translation phase does not
    /// flag.
    StaticMiss {
        /// The defect that was injected.
        injected: UbKind,
    },
    /// A statically doomed program that executes to a clean exit.
    CleanExit {
        /// The defect that was injected (and statically reported).
        injected: UbKind,
        /// The exit code the evaluator let through.
        exit: i64,
    },
    /// A doomed program whose dynamic verdict names a different defect
    /// than the injected one.
    KindMismatch {
        /// The injected (and statically reported) defect.
        injected: UbKind,
        /// What execution reported instead.
        executed: UbKind,
    },
    /// A UB-free-by-construction program that the translation phase
    /// flags (static false positive).
    SpuriousFinding {
        /// The first reported kind.
        kind: UbKind,
    },
    /// A UB-free-by-construction program that the evaluator refuses to
    /// run to completion.
    DefinedRejected {
        /// The outcome, rendered.
        outcome: String,
    },
    /// The tree-walking interpreter and the bytecode VM disagree on the
    /// outcome (or notes) of one program.
    EngineMismatch {
        /// The tree-walker's view, rendered.
        tree: String,
        /// The bytecode VM's view, rendered.
        bytecode: String,
    },
    /// The JSON renderer's view of a run, re-parsed, does not match the
    /// human-oracle verdict (or drops a finding field on the floor).
    FormatDrift {
        /// What drifted, rendered.
        detail: String,
    },
    /// The evaluator and a native compiler disagree on the exit code of
    /// a defined program.
    ExitMismatch {
        /// The evaluator's exit code.
        ours: i64,
        /// The native binary's exit status.
        native: i64,
        /// Which compiler produced the native binary.
        compiler: String,
    },
}

impl Divergence {
    /// A short, stable category string: the minimizer shrinks while the
    /// category is preserved, and trophy replays match on it.
    pub fn category(&self) -> String {
        match self {
            Divergence::ParseError(_) => "parse-error".into(),
            Divergence::VerdictMismatch { .. } => "verdict-mismatch".into(),
            Divergence::NotConst { .. } => "not-const".into(),
            Divergence::ValueMismatch { .. } => "value-mismatch".into(),
            Divergence::StaticMiss { injected } => format!("static-miss:{injected:?}"),
            Divergence::CleanExit { injected, .. } => format!("clean-exit:{injected:?}"),
            Divergence::KindMismatch { injected, .. } => format!("kind-mismatch:{injected:?}"),
            Divergence::SpuriousFinding { kind } => format!("spurious-finding:{kind:?}"),
            Divergence::DefinedRejected { .. } => "defined-rejected".into(),
            Divergence::EngineMismatch { .. } => "engine-mismatch".into(),
            Divergence::FormatDrift { .. } => "format-drift".into(),
            Divergence::ExitMismatch { .. } => "exit-mismatch".into(),
        }
    }

    /// One human-readable line for sweep output.
    pub fn describe(&self) -> String {
        match self {
            Divergence::ParseError(e) => format!("generated program failed to parse: {e}"),
            Divergence::VerdictMismatch {
                translation,
                execution,
            } => format!(
                "phases disagree: translation says {translation}, execution says {execution}"
            ),
            Divergence::NotConst { detail } => {
                format!("consteval refuses a constant expression: {detail}")
            }
            Divergence::ValueMismatch { folded, observed } => {
                format!("constant fold {folded} but dynamic witness observed {observed}")
            }
            Divergence::StaticMiss { injected } => {
                format!("translation phase missed injected {injected:?}")
            }
            Divergence::CleanExit { injected, exit } => {
                format!("statically doomed ({injected:?}) yet executed to a clean exit {exit}")
            }
            Divergence::KindMismatch { injected, executed } => {
                format!("injected {injected:?} but execution reported {executed:?}")
            }
            Divergence::SpuriousFinding { kind } => {
                format!("static false positive {kind:?} on a UB-free program")
            }
            Divergence::DefinedRejected { outcome } => {
                format!("UB-free program rejected: {outcome}")
            }
            Divergence::EngineMismatch { tree, bytecode } => {
                format!("engines disagree: tree-walker {tree}, bytecode VM {bytecode}")
            }
            Divergence::FormatDrift { detail } => {
                format!("JSON round-trip disagrees with the human verdict: {detail}")
            }
            Divergence::ExitMismatch {
                ours,
                native,
                compiler,
            } => format!("evaluator exited {ours} but {compiler} binary exited {native}"),
        }
    }
}

/// How (whether) to cross-check defined programs against a native
/// compiler.
#[derive(Debug, Clone, Default)]
pub struct CrossCheck {
    /// Compiler command (`gcc` or `clang`), if one was found on `PATH`.
    pub compiler: Option<String>,
    /// Scratch directory for sources and binaries.
    pub scratch: Option<std::path::PathBuf>,
}

impl CrossCheck {
    /// A disabled cross-checker (evaluator-only oracle).
    pub fn off() -> CrossCheck {
        CrossCheck::default()
    }

    /// Probe `PATH` for `gcc` then `clang`; returns a checker that
    /// compiles into `scratch`.
    pub fn detect(scratch: std::path::PathBuf) -> CrossCheck {
        for cc in ["gcc", "clang"] {
            let found = std::process::Command::new(cc)
                .arg("--version")
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .status()
                .map(|s| s.success())
                .unwrap_or(false);
            if found {
                return CrossCheck {
                    compiler: Some(cc.to_string()),
                    scratch: Some(scratch),
                };
            }
        }
        CrossCheck::off()
    }
}

/// Run the class-appropriate oracle on one generated case. `Ok(())`
/// means every applicable check agreed. Engine parity (oracle d) and
/// the JSON round-trip (oracle e) run first on every class — a VM that
/// disagrees with the reference tree-walker, or a renderer that
/// misreports the verdict, makes any further comparison meaningless.
pub fn check(
    case: &GenCase,
    cc: &CrossCheck,
    cross_check_this_case: bool,
) -> Result<(), Divergence> {
    check_engines(&case.source)?;
    check_json_roundtrip(&case.source)?;
    match case.class {
        crate::gen::Class::ConstExpr => {
            check_const_expr(case.expr.as_deref().expect("const case has expr"))
        }
        crate::gen::Class::Defined => check_defined(
            &case.source,
            if cross_check_this_case {
                cc
            } else {
                &CrossCheck {
                    compiler: None,
                    scratch: None,
                }
            },
        )
        .map(|_| ()),
        crate::gen::Class::Doomed => {
            check_doomed(&case.source, case.injected.expect("doomed case has kind"))
        }
    }
}

/// Parse `int main(void) { <expr>; return 0; }` and return the unit and
/// the expression's id.
fn parse_expr_stmt(expr: &str) -> Result<(TranslationUnit, ExprId), Divergence> {
    let src = format!("int main(void) {{ {expr}; return 0; }}");
    let unit = parse(&src).map_err(|e| Divergence::ParseError(e.to_string()))?;
    let main = unit.function_named("main").expect("main exists");
    let Stmt::Expr(e) = unit.stmt(main.body[0]) else {
        return Err(Divergence::ParseError(
            "expected an expression statement".into(),
        ));
    };
    let e = *e;
    Ok((unit, e))
}

/// Render a [`CInt`] as a C expression of exactly its own value *and*
/// type — including sub-`int` types (via a cast) and most-negative
/// values (via the `-MAX - 1` spelling, since `2147483648` would be a
/// `long` literal).
pub fn literal_of(v: CInt) -> String {
    let m = v.math();
    let suffix = match v.ty {
        IntTy::Int => "",
        IntTy::UInt => "u",
        IntTy::Long => "L",
        IntTy::ULong => "uL",
        IntTy::LongLong => "LL",
        IntTy::ULongLong => "uLL",
        // Sub-int types only arise from casts; spell them the same way.
        sub => {
            let name = match sub {
                IntTy::Bool => "_Bool",
                IntTy::Char => "char",
                IntTy::UChar => "unsigned char",
                IntTy::Short => "short",
                IntTy::UShort => "unsigned short",
                _ => unreachable!(),
            };
            // The inner value always fits in `int`, and the conversion
            // is exact (no implementation-defined wrap, no note).
            return format!("(({name})({m}))");
        }
    };
    if m == v.ty.min() && v.ty.is_signed() {
        // `-9223372036854775808L` does not exist as a literal; spell the
        // most negative value as an expression of the same type.
        format!("((-{}{suffix}) - 1{suffix})", v.ty.max())
    } else if m < 0 {
        format!("(-{}{suffix})", -m)
    } else {
        format!("{m}{suffix}")
    }
}

/// Render a run-time outcome for divergence messages.
fn render_outcome(o: &Outcome) -> String {
    match o {
        Outcome::Completed(e) => format!("completed with exit {e}"),
        Outcome::Undefined(e) => format!("{:?} ({})", e.kind(), e.kind().title()),
        Outcome::Unsupported { message, .. } => format!("engine limit: {message}"),
    }
}

/// Oracle (a): translation-time fold vs run-time evaluation of one
/// constant expression.
pub fn check_const_expr(expr: &str) -> Result<(), Divergence> {
    let (unit, e) = parse_expr_stmt(expr)?;
    let translation = const_eval(&unit, e);
    let execution = Interp::new(&unit, Limits::default()).run_main();

    match (&translation, &execution) {
        (Err(ConstStop::NotConst(loc)), _) => Err(Divergence::NotConst {
            detail: format!("stopped at {loc}"),
        }),
        (Err(ConstStop::Ub { kind, .. }), Outcome::Undefined(err)) => {
            if *kind == err.kind() {
                Ok(())
            } else {
                Err(Divergence::VerdictMismatch {
                    translation: format!("{kind:?}"),
                    execution: format!("{:?}", err.kind()),
                })
            }
        }
        (Err(ConstStop::Ub { kind, .. }), other) => Err(Divergence::VerdictMismatch {
            translation: format!("{kind:?}"),
            execution: render_outcome(other),
        }),
        (Ok(_), Outcome::Undefined(err)) => Err(Divergence::VerdictMismatch {
            translation: "defined".into(),
            execution: format!("{:?}", err.kind()),
        }),
        (Ok(_), Outcome::Unsupported { message, .. }) => Err(Divergence::VerdictMismatch {
            translation: "defined".into(),
            execution: format!("engine limit: {message}"),
        }),
        (Ok(v), Outcome::Completed(_)) => check_const_value(expr, *v),
    }
}

/// The dynamic witness for a defined constant: value equality after the
/// usual conversions, equal `sizeof`, and matching signedness (`-1 <
/// e`), which together pin value and type.
fn check_const_value(expr: &str, v: CInt) -> Result<(), Divergence> {
    let lit = literal_of(v);
    let src = format!(
        "int main(void) {{ \
           if (({expr}) == ({lit}) \
               && sizeof({expr}) == sizeof({lit}) \
               && ((-1 < ({expr})) == (-1 < ({lit})))) return 42; \
           return 7; }}"
    );
    let unit = parse(&src).map_err(|e| Divergence::ParseError(e.to_string()))?;
    let outcome = Interp::new(&unit, Limits::default()).run_main();
    match outcome {
        Outcome::Completed(42) => Ok(()),
        other => Err(Divergence::ValueMismatch {
            folded: format!("{} of type {}", v.math(), v.ty),
            observed: render_outcome(&other),
        }),
    }
}

/// Does this outcome report the evaluation step limit? The engines
/// count steps differently (the VM batches bookkeeping per basic block),
/// so hitting the limit on one side only is expected, not a divergence.
fn is_step_limit(o: &Outcome) -> bool {
    matches!(o, Outcome::Unsupported { message, .. } if message.contains("step limit"))
}

/// Oracle (d): engine parity. Run `source` under both the tree-walking
/// reference interpreter and the bytecode VM; outcome and notes must be
/// identical (step-limit stops excepted — the engines count steps
/// differently, so a "step limit exceeded" stop on one side only is a
/// resource verdict, not a semantic one).
pub fn check_engines(source: &str) -> Result<(), Divergence> {
    let unit = parse(source).map_err(|e| Divergence::ParseError(e.to_string()))?;
    let mut tree = Interp::with_engine(&unit, Limits::default(), Engine::Tree);
    let tree_out = tree.run_main();
    let mut vm = Interp::with_engine(&unit, Limits::default(), Engine::Bytecode);
    let vm_out = vm.run_main();
    if is_step_limit(&tree_out) || is_step_limit(&vm_out) {
        return Ok(());
    }
    if tree_out != vm_out {
        return Err(Divergence::EngineMismatch {
            tree: format!("{tree_out:?}"),
            bytecode: format!("{vm_out:?}"),
        });
    }
    if tree.notes() != vm.notes() {
        return Err(Divergence::EngineMismatch {
            tree: format!("notes {:?}", tree.notes()),
            bytecode: format!("notes {:?}", vm.notes()),
        });
    }
    Ok(())
}

/// Oracle (e): JSON round-trip. Build the [`FileResult`] the CLI would
/// build for `source`, render it with the JSONL renderer, re-parse the
/// lines, and require the structured view to match the human-oracle
/// verdict — and, for undefined programs, the finding's kind, code,
/// line, column, and detail — field-for-field.
pub fn check_json_roundtrip(source: &str) -> Result<(), Divergence> {
    let unit = parse(source).map_err(|e| Divergence::ParseError(e.to_string()))?;
    let mut interp = Interp::new(&unit, Limits::default());
    let outcome = interp.run_main();
    let drift = |detail: String| Divergence::FormatDrift { detail };

    // The FileResult the CLI's execution phase would build (the fuzzer
    // skips the translation phase: generated doomed programs re-detect
    // dynamically, which is what oracle (b) already checks).
    let mut result = FileResult {
        path: "fuzz-case.c".into(),
        verdict: Verdict::Defined,
        findings: Vec::new(),
        notes: interp.notes().to_vec(),
        success: None,
        exit: None,
        errors: Vec::new(),
    };
    match &outcome {
        Outcome::Completed(exit) => {
            result.success = Some(format!(
                "no undefined behavior detected (program returned {exit})"
            ));
            result.exit = Some(*exit);
        }
        Outcome::Undefined(err) => {
            result.verdict = Verdict::Undefined;
            result.findings.push(err.to_diagnostic());
        }
        Outcome::Unsupported { message, loc } => {
            result.verdict = Verdict::EngineFailure;
            result
                .errors
                .push(format!("checker limitation at {loc}: {message}"));
        }
    }
    // The renderer debug-asserts the location contract; report the
    // violation as a divergence instead of panicking a sweep worker.
    if let Some(d) = result.findings.first() {
        match d.loc {
            Some(loc) if loc.line >= 1 && loc.col >= 1 => {}
            other => {
                return Err(drift(format!(
                    "finding {:05} carries placeholder location {other:?}",
                    d.code
                )))
            }
        }
    }

    let rendered = JsonRenderer::new().render_file(&result);
    let mut events = Vec::new();
    for line in rendered.stdout.lines() {
        events.push(Json::parse(line).ok_or_else(|| drift(format!("unparsable JSONL {line:?}")))?);
    }
    let of_type = |ty: &'static str| {
        events
            .iter()
            .filter(move |e| e.get("type").and_then(Json::as_str) == Some(ty))
    };

    let verdicts: Vec<&Json> = of_type("verdict").collect();
    if verdicts.len() != 1 {
        return Err(drift(format!("{} verdict records", verdicts.len())));
    }
    let got = verdicts[0].get("verdict").and_then(Json::as_str);
    if got != Some(result.verdict.as_str()) {
        return Err(drift(format!(
            "verdict record says {got:?}, human oracle says {:?}",
            result.verdict.as_str()
        )));
    }
    if let Some(exit) = result.exit {
        if verdicts[0].get("exit").and_then(Json::as_f64) != Some(exit as f64) {
            return Err(drift("exit code dropped from the verdict record".into()));
        }
    }

    let records: Vec<&Json> = of_type("finding").collect();
    if records.len() != result.findings.len() {
        return Err(drift(format!(
            "{} finding records for {} findings",
            records.len(),
            result.findings.len()
        )));
    }
    for (event, d) in records.iter().zip(&result.findings) {
        let loc = d.loc.expect("contract checked above");
        let same = event.get("code").and_then(Json::as_u32) == Some(u32::from(d.code))
            && event.get("kind").and_then(Json::as_str)
                == d.kind.map(|k| format!("{k:?}")).as_deref()
            && event.get("line").and_then(Json::as_u32) == Some(loc.line)
            && event.get("column").and_then(Json::as_u32) == Some(loc.col)
            && event.get("detail").and_then(Json::as_str) == d.detail.as_deref();
        if !same {
            return Err(drift(format!(
                "record {event:?} does not round-trip diagnostic {:05} at {loc}",
                d.code
            )));
        }
    }

    if of_type("note").count() != result.notes.len() {
        return Err(drift("conversion notes dropped or invented".into()));
    }
    Ok(())
}

/// Oracle (b): phase agreement on a statically doomed program.
pub fn check_doomed(source: &str, injected: UbKind) -> Result<(), Divergence> {
    let unit = parse(source).map_err(|e| Divergence::ParseError(e.to_string()))?;
    let findings = analyze(&unit);
    if findings.is_empty() {
        return Err(Divergence::StaticMiss { injected });
    }
    // Execution of a statically doomed program must never reach a clean
    // exit; the injected defect sits on the guaranteed execution path.
    match Interp::new(&unit, Limits::default()).run_main() {
        Outcome::Completed(exit) => Err(Divergence::CleanExit { injected, exit }),
        Outcome::Undefined(err) if err.kind() != injected => Err(Divergence::KindMismatch {
            injected,
            executed: err.kind(),
        }),
        // The injected kind dynamically re-detected, or an engine limit:
        // either way, not a clean exit.
        _ => Ok(()),
    }
}

/// Oracle (c): a UB-free program must analyze clean, complete under the
/// evaluator, and (optionally) exit identically when compiled natively.
/// Returns the evaluator's exit code on success so sweeps can record
/// golden snapshots.
pub fn check_defined(source: &str, cc: &CrossCheck) -> Result<i64, Divergence> {
    let unit = parse(source).map_err(|e| Divergence::ParseError(e.to_string()))?;
    let findings = analyze(&unit);
    if let Some(first) = findings.first() {
        return Err(Divergence::SpuriousFinding { kind: first.kind() });
    }
    let outcome = Interp::new(&unit, Limits::default()).run_main();
    let exit = match outcome {
        Outcome::Completed(e) => e,
        other => {
            return Err(Divergence::DefinedRejected {
                outcome: render_outcome(&other),
            })
        }
    };
    if let (Some(compiler), Some(scratch)) = (&cc.compiler, &cc.scratch) {
        let native = native_exit(compiler, scratch, source)?;
        if native != (exit & 0xFF) {
            return Err(Divergence::ExitMismatch {
                ours: exit,
                native,
                compiler: compiler.clone(),
            });
        }
    }
    Ok(exit)
}

/// Compile `source` with `compiler` and run the binary, returning its
/// exit status. The generated subset calls `malloc`/`free` without
/// headers, so a `<stdlib.h>` prelude is added for the native build.
fn native_exit(compiler: &str, scratch: &std::path::Path, source: &str) -> Result<i64, Divergence> {
    use std::process::Command;
    let _ = std::fs::create_dir_all(scratch);
    let tag = format!("{}-{:x}", std::process::id(), fxhash(source));
    let c_path = scratch.join(format!("cc-{tag}.c"));
    let bin_path = scratch.join(format!("cc-{tag}.bin"));
    let full = format!("#include <stdlib.h>\n{source}");
    std::fs::write(&c_path, full).map_err(|e| Divergence::ParseError(format!("io: {e}")))?;
    let status = Command::new(compiler)
        .arg("-std=c11")
        .arg("-O1")
        .arg("-o")
        .arg(&bin_path)
        .arg(&c_path)
        .output()
        .map_err(|e| Divergence::ParseError(format!("{compiler}: {e}")))?;
    if !status.status.success() {
        return Err(Divergence::ParseError(format!(
            "{compiler} rejected a generated program: {}",
            String::from_utf8_lossy(&status.stderr)
        )));
    }
    let run = Command::new(&bin_path)
        .output()
        .map_err(|e| Divergence::ParseError(format!("run: {e}")))?;
    let code = run.status.code().unwrap_or(-1) as i64;
    let _ = std::fs::remove_file(&c_path);
    let _ = std::fs::remove_file(&bin_path);
    Ok(code)
}

/// A tiny stable hash for scratch-file names (not exposed; determinism
/// only matters within one process).
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
