//! The decision trace: the fuzzer's unit of replay and shrinking.
//!
//! The program generator never consumes raw random bits; it asks a
//! [`DecisionSource`] questions ("which statement next?", "which
//! operator?"). In *record* mode the answers come from a seeded
//! [`SplitMix64`] and every draw is appended to
//! the trace. In *replay* mode the answers come from a stored trace, and
//! a source that runs past the end keeps answering `0` — which, by
//! generator convention, is always the **simplest** choice (fewest
//! statements, shallowest expression, first alternative). That
//! convention is what makes shrinking work: truncating or zeroing a
//! trace always yields a smaller program, never a stuck generator.

use crate::rng::SplitMix64;

/// A stream of generator decisions, recorded for replay.
#[derive(Debug, Clone)]
pub struct DecisionSource {
    rng: Option<SplitMix64>,
    replay: Vec<u64>,
    pos: usize,
    trace: Vec<u64>,
}

impl DecisionSource {
    /// A recording source: fresh draws from `seed`, all remembered.
    pub fn from_seed(seed: u64) -> DecisionSource {
        DecisionSource {
            rng: Some(SplitMix64::new(seed)),
            replay: Vec::new(),
            pos: 0,
            trace: Vec::new(),
        }
    }

    /// A replaying source: answers come from `trace`; past its end every
    /// answer is `0`, the simplest choice.
    pub fn replay(trace: &[u64]) -> DecisionSource {
        DecisionSource {
            rng: None,
            replay: trace.to_vec(),
            pos: 0,
            trace: Vec::new(),
        }
    }

    /// The next raw decision.
    #[allow(clippy::should_implement_trait)] // not an iterator: never exhausts
    pub fn next(&mut self) -> u64 {
        let v = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else {
            match &mut self.rng {
                Some(rng) => rng.next_u64(),
                None => 0,
            }
        };
        self.pos += 1;
        self.trace.push(v);
        v
    }

    /// A decision in `0..n`. By convention `0` is the simplest
    /// alternative at every choice point.
    pub fn choose(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }

    /// A decision in `lo..=hi` (used for sizes and loop counts; `lo` is
    /// the simplest).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.choose(hi - lo + 1)
    }

    /// A coin flip that comes up `false` (the simpler outcome) on `0`.
    pub fn flip(&mut self) -> bool {
        self.choose(2) == 1
    }

    /// Everything drawn so far, in order — the trace a failing case is
    /// replayed and shrunk from.
    pub fn trace(&self) -> &[u64] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_round_trips() {
        let mut rec = DecisionSource::from_seed(7);
        let drawn: Vec<u64> = (0..20).map(|_| rec.next()).collect();
        assert_eq!(rec.trace(), &drawn[..]);

        let mut rep = DecisionSource::replay(rec.trace());
        for d in &drawn {
            assert_eq!(rep.next(), *d);
        }
        // Past the end: all zeros.
        assert_eq!(rep.next(), 0);
        assert_eq!(rep.choose(17), 0);
    }

    #[test]
    fn truncated_replay_pads_with_simplest() {
        let mut rec = DecisionSource::from_seed(9);
        for _ in 0..10 {
            rec.next();
        }
        let short = &rec.trace()[..3];
        let mut rep = DecisionSource::replay(short);
        for (i, v) in short.iter().enumerate() {
            assert_eq!(rep.next(), *v, "entry {i}");
        }
        assert_eq!(rep.next(), 0);
    }
}
