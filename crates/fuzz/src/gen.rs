//! The csmith-lite program generator.
//!
//! Three program classes, one per oracle (see [`crate::oracle`]):
//!
//! - [`Class::ConstExpr`] — a single integer constant expression
//!   (§6.6 subset: typed constants, arithmetic, casts, `?:`, short
//!   circuits, `sizeof`) wrapped in a `main`. The consteval-vs-eval
//!   oracle folds it at translation time and re-evaluates it at run
//!   time; the two must agree on value, type, and verdict.
//! - [`Class::Defined`] — a UB-free-by-construction program over the
//!   full supported subset: typed scalar declarations across the LP64
//!   lattice, arrays, pointers, `malloc`/`free`, casts, char-sweeps of
//!   object representations, `sizeof`, `switch`/loops/helper functions.
//!   Safety is structural: every generated expression is masked into
//!   `0..=16383` before it becomes an operand, divisors are forced
//!   nonzero, shifts are pre-masked, indices are masked by power-of-two
//!   array lengths, and every object is fully initialized before use.
//! - [`Class::Doomed`] — a small defined skeleton with exactly one
//!   *statically detectable* defect injected on the guaranteed
//!   execution path. The phase-agreement oracle demands the
//!   translation phase flag it and the execution phase refuse to
//!   complete cleanly.
//!
//! All decisions flow through a [`DecisionSource`], and choice `0` is
//! always the simplest alternative, so replaying a truncated or zeroed
//! trace yields a smaller program (the minimizer's contract).

use crate::decision::DecisionSource;
use cundef_semantics::ctype::IntTy;
use cundef_ub::UbKind;

/// The three generated program classes, one per oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// A constant expression for the consteval-vs-eval oracle.
    ConstExpr,
    /// A UB-free program for the exit-code oracle.
    Defined,
    /// A statically doomed program for the phase-agreement oracle.
    Doomed,
}

impl Class {
    /// The class of sweep case `index` (round-robin, so every shard sees
    /// every class).
    pub fn of_case(index: u64) -> Class {
        match index % 3 {
            0 => Class::ConstExpr,
            1 => Class::Defined,
            _ => Class::Doomed,
        }
    }

    /// Stable name used in sweep output and trophy files.
    pub fn name(self) -> &'static str {
        match self {
            Class::ConstExpr => "const-expr",
            Class::Defined => "defined",
            Class::Doomed => "doomed",
        }
    }

    /// Parse a class name (the inverse of [`Class::name`]).
    pub fn from_name(s: &str) -> Option<Class> {
        match s {
            "const-expr" => Some(Class::ConstExpr),
            "defined" => Some(Class::Defined),
            "doomed" => Some(Class::Doomed),
            _ => None,
        }
    }
}

/// One generated case: the program text plus what the oracle should
/// expect of it.
#[derive(Debug, Clone)]
pub struct GenCase {
    /// Which oracle this case feeds.
    pub class: Class,
    /// The program source, in the supported subset.
    pub source: String,
    /// For [`Class::ConstExpr`]: the expression under test (the program
    /// is `int main(void) {{ <expr>; return 0; }}`).
    pub expr: Option<String>,
    /// For [`Class::Doomed`]: the injected defect's kind, which the
    /// translation phase must report.
    pub injected: Option<UbKind>,
}

/// Generate the case for `class` from `d`.
pub fn generate(class: Class, d: &mut DecisionSource) -> GenCase {
    match class {
        Class::ConstExpr => {
            let expr = const_expr(d, 4);
            GenCase {
                class,
                source: format!("int main(void) {{ {expr}; return 0; }}\n"),
                expr: Some(expr),
                injected: None,
            }
        }
        Class::Defined => GenCase {
            class,
            source: DefinedGen::new(d).program(),
            expr: None,
            injected: None,
        },
        Class::Doomed => {
            let (source, kind) = doomed(d);
            GenCase {
                class,
                source,
                expr: None,
                injected: Some(kind),
            }
        }
    }
}

/// All eleven names of the LP64 integer lattice, simplest first.
const TY_NAMES: &[(&str, IntTy)] = &[
    ("int", IntTy::Int),
    ("unsigned int", IntTy::UInt),
    ("long", IntTy::Long),
    ("unsigned long", IntTy::ULong),
    ("char", IntTy::Char),
    ("unsigned char", IntTy::UChar),
    ("short", IntTy::Short),
    ("unsigned short", IntTy::UShort),
    ("long long", IntTy::LongLong),
    ("unsigned long long", IntTy::ULongLong),
    ("_Bool", IntTy::Bool),
];

/// Integer-constant leaves for constant expressions: boundary values of
/// every width and signedness, plus character constants (§6.4.4).
const CONST_LEAVES: &[&str] = &[
    "0",
    "1",
    "2",
    "7",
    "15",
    "255",
    "65535",
    "32767",
    "2147483647",
    "1u",
    "0u",
    "3u",
    "4294967295u",
    "1L",
    "255L",
    "2147483647L",
    "4294967295L",
    "9223372036854775807L",
    "1uL",
    "18446744073709551615uL",
    "1LL",
    "9223372036854775807LL",
    "1uLL",
    "'A'",
    "'\\n'",
    "'\\0'",
    "017",
    "0x1F",
    "0xFFFF",
];

const BIN_OPS: &[&str] = &[
    "+", "-", "*", "/", "%", "<<", ">>", "<", "<=", ">", ">=", "==", "!=", "&", "^", "|",
];

/// A random constant expression (§6.6 subset). Undefined operations are
/// *intentionally* reachable — the oracle checks the two phases agree on
/// which they are, not that they are absent.
pub fn const_expr(d: &mut DecisionSource, depth: u32) -> String {
    if depth == 0 {
        return CONST_LEAVES[d.choose(CONST_LEAVES.len() as u64) as usize].to_string();
    }
    match d.choose(10) {
        // Leaves keep their weight so trees stay shallow on average.
        0..=2 => CONST_LEAVES[d.choose(CONST_LEAVES.len() as u64) as usize].to_string(),
        3 | 4 => {
            let op = BIN_OPS[d.choose(BIN_OPS.len() as u64) as usize];
            let a = const_expr(d, depth - 1);
            let b = const_expr(d, depth - 1);
            format!("({a} {op} {b})")
        }
        5 => {
            let op = ["-", "~", "!"][d.choose(3) as usize];
            let a = const_expr(d, depth - 1);
            format!("({op}{a})")
        }
        6 => {
            // Casts fold per §6.6:6; sub-int target types are the
            // interesting ones (they leave the promoted-arithmetic
            // lattice).
            let (ty, _) = TY_NAMES[d.choose(TY_NAMES.len() as u64) as usize];
            let a = const_expr(d, depth - 1);
            format!("(({ty})({a}))")
        }
        7 => {
            let c = const_expr(d, depth - 1);
            let t = const_expr(d, depth - 1);
            let f = const_expr(d, depth - 1);
            format!("({c} ? {t} : {f})")
        }
        8 => {
            let op = if d.flip() { "&&" } else { "||" };
            let a = const_expr(d, depth - 1);
            let b = const_expr(d, depth - 1);
            format!("({a} {op} {b})")
        }
        _ => {
            if d.flip() {
                // `sizeof(expr)` — the operand is unevaluated, so even
                // an undefined operand leaves the whole expression
                // defined (§6.5.3.4:2).
                let a = const_expr(d, depth - 1);
                format!("(sizeof({a}))")
            } else {
                let names: &[&str] = &[
                    "int",
                    "char",
                    "short",
                    "long",
                    "long long",
                    "unsigned int",
                    "_Bool",
                    "int *",
                    "char *",
                    "long *",
                ];
                let ty = names[d.choose(names.len() as u64) as usize];
                format!("(sizeof({ty}))")
            }
        }
    }
}

/// A variable visible to the expression generator. `frozen` marks loop
/// induction variables and `while` down-counters: reads are fine, but a
/// body statement that wrote one could reset the loop's progress and
/// un-bound a bounded loop, so they are never assignment targets.
#[derive(Debug, Clone)]
struct ScalarVar {
    name: String,
    ty: IntTy,
    frozen: bool,
}

/// An array (or heap buffer) visible to the generator; lengths are
/// powers of two so indices can be masked instead of range-checked.
#[derive(Debug, Clone)]
struct ArrayVar {
    name: String,
    ty: IntTy,
    len: u32,
}

/// Generator for UB-free programs. See the module docs for the safety
/// invariants; in short, [`DefinedGen::safe_expr`] only ever produces
/// expressions whose value is in `0..=16383` and whose evaluation is
/// defined, and every statement keeps objects fully initialized.
struct DefinedGen<'d> {
    d: &'d mut DecisionSource,
    scalars: Vec<ScalarVar>,
    arrays: Vec<ArrayVar>,
    helpers: u32,
    tmp: u32,
    body: String,
    indent: usize,
}

impl<'d> DefinedGen<'d> {
    fn new(d: &'d mut DecisionSource) -> DefinedGen<'d> {
        DefinedGen {
            d,
            scalars: Vec::new(),
            arrays: Vec::new(),
            helpers: 0,
            tmp: 0,
            body: String::new(),
            indent: 1,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.tmp += 1;
        format!("{prefix}{}", self.tmp)
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.body.push_str("  ");
        }
        self.body.push_str(s);
        self.body.push('\n');
    }

    /// The whole program. Choice 0 keeps everything minimal; higher
    /// draws scale the declaration and statement budget, and one branch
    /// reuses the bench corpus builders (fuzzed loop counts) so the two
    /// corpora stay exercised by the same sweep.
    fn program(mut self) -> String {
        if self.d.choose(8) == 7 {
            return corpus_template(self.d);
        }
        let mut out = String::new();

        // Helper functions: pure, masked, int-valued. `self.helpers` is
        // incremented only after a body is generated, so `mixK` can call
        // `mix1..mixK-1` but never itself — generated call graphs are
        // acyclic and no program can recurse unboundedly.
        let n_helpers = self.d.choose(3);
        for _ in 0..n_helpers {
            let name = format!("mix{}", self.helpers + 1);
            // Bodies only read their (masked) parameters, so calls have
            // no side effects and no sequencing hazards.
            let body = {
                let saved = std::mem::take(&mut self.scalars);
                self.scalars = vec![
                    ScalarVar {
                        name: "a".into(),
                        ty: IntTy::Int,
                        frozen: false,
                    },
                    ScalarVar {
                        name: "b".into(),
                        ty: IntTy::Int,
                        frozen: false,
                    },
                ];
                let e = self.safe_expr(2);
                self.scalars = saved;
                e
            };
            self.helpers += 1;
            out.push_str(&format!("int {name}(int a, int b) {{ return {body}; }}\n"));
        }

        out.push_str("int main(void) {\n");

        // Scalar declarations: 1..=5 across the lattice, always
        // initialized with an in-range constant.
        let n_scalars = 1 + self.d.choose(5);
        for _ in 0..n_scalars {
            let (tyname, ty) = TY_NAMES[self.d.choose(TY_NAMES.len() as u64) as usize];
            let name = self.fresh("v");
            let init = self.d.choose(100);
            self.line(&format!("{tyname} {name} = {init};"));
            self.scalars.push(ScalarVar {
                name,
                ty,
                frozen: false,
            });
        }

        // Arrays: 0..=2, power-of-two lengths, fully brace-initialized.
        let n_arrays = self.d.choose(3);
        for _ in 0..n_arrays {
            let (tyname, ty) = TY_NAMES[self.d.choose(6) as usize]; // wide enough menu
            let len = [4u32, 8, 16][self.d.choose(3) as usize];
            let name = self.fresh("arr");
            let elems: Vec<String> = (0..len).map(|_| self.d.choose(100).to_string()).collect();
            self.line(&format!(
                "{tyname} {name}[{len}] = {{{}}};",
                elems.join(", ")
            ));
            self.arrays.push(ArrayVar { name, ty, len });
        }

        // A pointer alias for one array, sometimes — pointer reads and
        // writes then flow through it.
        if !self.arrays.is_empty() && self.d.flip() {
            let a = self.arrays[self.d.choose(self.arrays.len() as u64) as usize].clone();
            let tyname = ty_name(a.ty);
            let pname = self.fresh("p");
            self.line(&format!("{tyname} *{pname} = {};", a.name));
            self.arrays.push(ArrayVar {
                name: pname,
                ty: a.ty,
                len: a.len,
            });
        }

        // Heap buffers: 0..=2, `malloc(len * sizeof(T))`, fully
        // initialized by a loop, freed before return.
        let mut frees = Vec::new();
        let n_heap = self.d.choose(3);
        for _ in 0..n_heap {
            let (tyname, ty) = TY_NAMES[self.d.choose(4) as usize];
            let len = [4u32, 8][self.d.choose(2) as usize];
            let name = self.fresh("h");
            let iv = self.fresh("ih");
            self.line(&format!(
                "{tyname} *{name} = malloc({len} * sizeof({tyname}));"
            ));
            self.line(&format!(
                "for (int {iv} = 0; {iv} < {len}; {iv}++) {name}[{iv}] = {iv};"
            ));
            self.arrays.push(ArrayVar {
                name: name.clone(),
                ty,
                len,
            });
            frees.push(name);
        }

        // The statement body.
        let n_stmts = 2 + self.d.choose(9);
        for _ in 0..n_stmts {
            self.stmt(2);
        }

        // The return value is computed *before* the heap buffers are
        // freed — the expression may read them; reading after `free`
        // would be the use-after-free the Defined class promises not to
        // contain.
        let ret = self.safe_expr(2);
        let rv = self.fresh("r");
        self.line(&format!("int {rv} = ({ret}) & 127;"));
        for f in frees {
            self.line(&format!("free({f});"));
        }
        self.line(&format!("return {rv};"));
        out.push_str(&self.body);
        out.push_str("}\n");
        out
    }

    /// One statement at nesting depth `depth` (0 = only simple
    /// statements, so nesting terminates).
    fn stmt(&mut self, depth: u32) {
        let menu = if depth == 0 { 5 } else { 11 };
        match self.d.choose(menu) {
            // Simple assignment to a scalar.
            0 => {
                let v = self.pick_lvalue();
                let e = self.safe_expr(2);
                self.line(&format!("{v} = {e};"));
            }
            // Compound assignment; `^= &= |=` are safe for any operand,
            // `+= -=` stay far from overflow under the 16383 mask and
            // bounded iteration counts.
            1 => {
                let v = self.pick_lvalue();
                let op = ["^=", "&=", "|=", "+=", "-="][self.d.choose(5) as usize];
                let e = self.safe_expr(1);
                self.line(&format!("{v} {op} {e};"));
            }
            // Array / pointer / heap store with a masked index.
            2 => {
                if let Some(a) = self.pick_array() {
                    let idx = self.safe_expr(1);
                    let e = self.safe_expr(1);
                    if self.d.flip() {
                        self.line(&format!("{}[({idx}) & {}] = {e};", a.name, a.len - 1));
                    } else {
                        self.line(&format!("*({} + (({idx}) & {})) = {e};", a.name, a.len - 1));
                    }
                } else {
                    let v = self.pick_lvalue();
                    let e = self.safe_expr(1);
                    self.line(&format!("{v} = {e};"));
                }
            }
            // Increment/decrement — unsigned operands only, where wrap
            // is defined.
            3 => {
                if let Some(v) = self.pick_unsigned() {
                    let op = if self.d.flip() { "++" } else { "--" };
                    self.line(&format!("{v}{op};"));
                } else {
                    let v = self.pick_lvalue();
                    let e = self.safe_expr(1);
                    self.line(&format!("{v} = {e};"));
                }
            }
            // Bare expression statement (value discarded, sometimes
            // through a `(void)` cast).
            4 => {
                let e = self.safe_expr(1);
                if self.d.flip() {
                    self.line(&format!("(void)({e});"));
                } else {
                    self.line(&format!("{e};"));
                }
            }
            // `if` / `if-else`.
            5 => {
                let c = self.cond();
                self.line(&format!("if ({c}) {{"));
                self.indent += 1;
                self.stmt(depth - 1);
                self.indent -= 1;
                if self.d.flip() {
                    self.line("} else {");
                    self.indent += 1;
                    self.stmt(depth - 1);
                    self.indent -= 1;
                }
                self.line("}");
            }
            // Bounded `for` loop; the induction variable is visible to
            // the body as an ordinary (masked) scalar.
            6 => {
                let iv = self.fresh("i");
                let n = 1 + self.d.choose(16);
                self.line(&format!("for (int {iv} = 0; {iv} < {n}; {iv}++) {{"));
                self.indent += 1;
                self.scalars.push(ScalarVar {
                    name: iv,
                    ty: IntTy::Int,
                    frozen: true,
                });
                let body = 1 + self.d.choose(3);
                for _ in 0..body {
                    self.stmt(depth - 1);
                }
                self.scalars.pop();
                self.indent -= 1;
                self.line("}");
            }
            // Bounded `while` via an explicit down-counter.
            7 => {
                let wv = self.fresh("w");
                let n = 1 + self.d.choose(12);
                self.line("{");
                self.indent += 1;
                self.line(&format!("int {wv} = {n};"));
                self.line(&format!("while ({wv} > 0) {{"));
                self.indent += 1;
                self.line(&format!("{wv} = {wv} - 1;"));
                self.scalars.push(ScalarVar {
                    name: wv,
                    ty: IntTy::Int,
                    frozen: true,
                });
                self.stmt(depth - 1);
                self.scalars.pop();
                self.indent -= 1;
                self.line("}");
                self.indent -= 1;
                self.line("}");
            }
            // `switch` over a masked scrutinee; distinct case values by
            // construction, every arm `break`s.
            8 => {
                let e = self.safe_expr(1);
                let arms = 1 + self.d.choose(4);
                self.line(&format!("switch (({e}) & 3) {{"));
                self.indent += 1;
                for k in 0..arms {
                    self.line(&format!("case {k}: {{"));
                    self.indent += 1;
                    self.stmt(depth - 1);
                    self.line("break;");
                    self.indent -= 1;
                    self.line("}");
                }
                if self.d.flip() {
                    self.line("default: {");
                    self.indent += 1;
                    self.stmt(depth - 1);
                    self.indent -= 1;
                    self.line("}");
                }
                self.indent -= 1;
                self.line("}");
            }
            // A nested block with a shadowed-scope local.
            9 => {
                let (tyname, ty) = TY_NAMES[self.d.choose(4) as usize];
                let name = self.fresh("t");
                let e = self.safe_expr(1);
                self.line("{");
                self.indent += 1;
                self.line(&format!("{tyname} {name} = {e};"));
                self.scalars.push(ScalarVar {
                    name,
                    ty,
                    frozen: false,
                });
                self.stmt(depth - 1);
                self.scalars.pop();
                self.indent -= 1;
                self.line("}");
            }
            // A char-sweep write: rewrite one byte of a scalar's object
            // representation through an `unsigned char *` (§6.5:7), then
            // the object is still fully initialized. Writes, so frozen
            // loop-control variables are excluded here too.
            _ => {
                let writable: Vec<ScalarVar> =
                    self.scalars.iter().filter(|v| !v.frozen).cloned().collect();
                let v = writable[self.d.choose(writable.len() as u64) as usize].clone();
                let k = self.d.choose(v.ty.size_bytes());
                let mut b = self.d.choose(100);
                if v.ty == IntTy::Bool {
                    // An arbitrary byte in a `_Bool` object is a
                    // non-canonical (possibly trap, §6.2.6.1:5)
                    // representation — native compilers read it back
                    // verbatim while the value bit says otherwise. Only
                    // 0 and 1 keep the program defined.
                    b &= 1;
                }
                self.line(&format!("((unsigned char *)&{})[{k}] = {b};", v.name));
            }
        }
    }

    /// A condition: either a masked value (truthiness) or a comparison.
    fn cond(&mut self) -> String {
        let a = self.safe_expr(1);
        if self.d.flip() {
            let b = self.safe_expr(1);
            let op = ["<", "<=", ">", ">=", "==", "!="][self.d.choose(6) as usize];
            format!("({a}) {op} ({b})")
        } else {
            a
        }
    }

    fn pick_scalar(&mut self) -> String {
        self.scalars[self.d.choose(self.scalars.len() as u64) as usize]
            .name
            .clone()
    }

    /// An assignable scalar: frozen loop-control variables are excluded
    /// (writing one could un-bound its loop). `main` always declares at
    /// least one unfrozen scalar before any loop, so this never fails.
    fn pick_lvalue(&mut self) -> String {
        let writable: Vec<&ScalarVar> = self.scalars.iter().filter(|v| !v.frozen).collect();
        writable[self.d.choose(writable.len() as u64) as usize]
            .name
            .clone()
    }

    fn pick_unsigned(&mut self) -> Option<String> {
        let unsigned: Vec<&ScalarVar> = self
            .scalars
            .iter()
            .filter(|v| !v.frozen && !v.ty.is_signed() && v.ty != IntTy::Bool)
            .collect();
        if unsigned.is_empty() {
            return None;
        }
        Some(
            unsigned[self.d.choose(unsigned.len() as u64) as usize]
                .name
                .clone(),
        )
    }

    fn pick_array(&mut self) -> Option<ArrayVar> {
        if self.arrays.is_empty() {
            return None;
        }
        Some(self.arrays[self.d.choose(self.arrays.len() as u64) as usize].clone())
    }

    /// A defined expression whose value is in `0..=16383`: every
    /// composite is masked before it can become an operand, divisors are
    /// `1..=16`, shift counts `0..=7` over pre-masked bases, and every
    /// read is of a fully-initialized object.
    fn safe_expr(&mut self, depth: u32) -> String {
        if depth == 0 {
            return self.safe_leaf();
        }
        match self.d.choose(10) {
            0 | 1 => self.safe_leaf(),
            2 => {
                let op = ["+", "-", "*", "&", "^", "|"][self.d.choose(6) as usize];
                let a = self.safe_expr(depth - 1);
                let b = self.safe_expr(depth - 1);
                format!("(({a} {op} {b}) & 16383)")
            }
            3 => {
                // Division and remainder with a forced-nonzero divisor.
                let op = if self.d.flip() { "/" } else { "%" };
                let a = self.safe_expr(depth - 1);
                let b = self.safe_expr(depth - 1);
                format!("(({a}) {op} ((({b}) & 15) + 1))")
            }
            4 => {
                // Shifts: base pre-masked to 8 bits, count to 3 bits, so
                // the result fits every promoted type.
                let a = self.safe_expr(depth - 1);
                let k = self.d.choose(8);
                if self.d.flip() {
                    format!("((({a}) & 255) << {k})")
                } else {
                    format!("(({a}) >> {k})")
                }
            }
            5 => {
                let op = ["<", "<=", ">", ">=", "==", "!="][self.d.choose(6) as usize];
                let a = self.safe_expr(depth - 1);
                let b = self.safe_expr(depth - 1);
                format!("(({a}) {op} ({b}))")
            }
            6 => {
                let op = if self.d.flip() { "&&" } else { "||" };
                let a = self.safe_expr(depth - 1);
                let b = self.safe_expr(depth - 1);
                format!("(({a}) {op} ({b}))")
            }
            7 => {
                let c = self.safe_expr(depth - 1);
                let t = self.safe_expr(depth - 1);
                let f = self.safe_expr(depth - 1);
                format!("(({c}) ? ({t}) : ({f}))")
            }
            8 => {
                // A cast: implementation-defined narrowing wraps (with a
                // note) but is never undefined; the result is re-masked
                // to keep the value invariant.
                let (tyname, _) = TY_NAMES[self.d.choose(TY_NAMES.len() as u64) as usize];
                let a = self.safe_expr(depth - 1);
                format!("((({tyname})({a})) & 127)")
            }
            _ => {
                if self.helpers > 0 && self.d.flip() {
                    let h = 1 + self.d.choose(self.helpers as u64);
                    let a = self.safe_expr(depth - 1);
                    let b = self.safe_expr(depth - 1);
                    format!("(mix{h}(({a}), ({b})) & 16383)")
                } else {
                    let (tyname, _) = TY_NAMES[self.d.choose(TY_NAMES.len() as u64) as usize];
                    format!("((int)sizeof({tyname}) & 31)")
                }
            }
        }
    }

    /// A leaf: a small literal, a masked scalar read, a masked
    /// array/pointer/heap element, or one byte of a scalar's object
    /// representation through the §6.5:7 character escape.
    fn safe_leaf(&mut self) -> String {
        match self.d.choose(5) {
            0 => self.d.choose(10000).to_string(),
            1 | 2 => {
                let v = self.pick_scalar();
                format!("({v} & 16383)")
            }
            3 => match self.pick_array() {
                Some(a) => {
                    let idx = self.pick_scalar();
                    if self.d.flip() {
                        format!("({}[({idx}) & {}] & 16383)", a.name, a.len - 1)
                    } else {
                        format!("(*({} + (({idx}) & {})) & 16383)", a.name, a.len - 1)
                    }
                }
                None => {
                    let v = self.pick_scalar();
                    format!("({v} & 16383)")
                }
            },
            _ => {
                // Read one representation byte of a (fully initialized)
                // scalar through `unsigned char *`.
                let v = self.scalars[self.d.choose(self.scalars.len() as u64) as usize].clone();
                let k = self.d.choose(v.ty.size_bytes());
                format!("(((unsigned char *)&{})[{k}] & 255)", v.name)
            }
        }
    }
}

/// The C spelling of an [`IntTy`] (the generator needs it for derived
/// declarations like pointer aliases).
fn ty_name(ty: IntTy) -> &'static str {
    TY_NAMES
        .iter()
        .find(|(_, t)| *t == ty)
        .map(|(n, _)| *n)
        .expect("every lattice type is in TY_NAMES")
}

/// A bench-corpus program with a fuzzed loop count: the fuzzer reuses
/// the corpus builders as known-defined skeletons, so a semantic change
/// that breaks the benchmarks is also caught by the sweep.
fn corpus_template(d: &mut DecisionSource) -> String {
    use cundef_bench::corpus;
    let n = 1 + d.choose(64) as u32;
    match d.choose(9) {
        0 => corpus::arith_loop(n),
        1 => corpus::scope_loop(n),
        2 => corpus::array_loop(n),
        3 => corpus::call_loop(n),
        4 => corpus::promotion_loop(n),
        5 => corpus::mixed_width_loop(n),
        6 => corpus::mem_sweep_loop(1 + n / 8),
        7 => corpus::mem_heap_loop(n),
        _ => corpus::mem_typedmix_loop(1 + n / 8),
    }
}

/// A statically doomed program: a tiny defined skeleton plus exactly one
/// injected defect the translation phase must catch — and whose
/// execution must not complete cleanly. Returns the source and the
/// injected defect's kind.
fn doomed(d: &mut DecisionSource) -> (String, UbKind) {
    // A minimal defined prologue so the defect is not the whole program.
    let v0 = d.choose(50);
    let mut body = format!("  int v0 = {v0};\n  v0 = (v0 + 1) & 1023;\n");
    let mut prelude = String::new();
    let kind = match d.choose(7) {
        0 => {
            let k = 1 + d.choose(7);
            body.push_str(&format!("  int bad[-{k}];\n"));
            UbKind::ArraySizeNotPositive
        }
        1 => {
            let n = 1 + d.choose(9);
            body.push_str(&format!("  int bad[{n} / 0];\n"));
            UbKind::DivisionByZero
        }
        2 => {
            let n = 1 + d.choose(9);
            body.push_str(&format!("  int bad[2147483647 + {n}];\n"));
            UbKind::SignedOverflow
        }
        3 => {
            let c = d.choose(9);
            body.push_str(&format!("  const int cc = {c};\n  cc = {};\n", c + 1));
            UbKind::WriteToConst
        }
        4 => {
            prelude.push_str("int one(int x) { return x & 1023; }\n");
            if d.flip() {
                body.push_str("  v0 = one(1, 2);\n");
            } else {
                body.push_str("  v0 = one();\n");
            }
            UbKind::CallWrongArity
        }
        5 => {
            let n = 1 + d.choose(9);
            body.push_str(&format!("  switch (v0 & 1) {{ case {n} / 0: break; }}\n"));
            UbKind::DivisionByZero
        }
        _ => {
            body.push_str("  void bad;\n");
            UbKind::IncompleteTypeObject
        }
    };
    (
        format!("{prelude}int main(void) {{\n{body}  return v0 & 127;\n}}\n"),
        kind,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for class in [Class::ConstExpr, Class::Defined, Class::Doomed] {
            let mut a = DecisionSource::from_seed(42);
            let mut b = DecisionSource::from_seed(42);
            assert_eq!(
                generate(class, &mut a).source,
                generate(class, &mut b).source
            );
        }
    }

    #[test]
    fn replay_of_recorded_trace_reproduces_the_program() {
        for seed in 0..20 {
            for class in [Class::ConstExpr, Class::Defined, Class::Doomed] {
                let mut rec = DecisionSource::from_seed(seed);
                let original = generate(class, &mut rec);
                let trace = rec.trace().to_vec();
                let mut rep = DecisionSource::replay(&trace);
                let replayed = generate(class, &mut rep);
                assert_eq!(original.source, replayed.source, "seed {seed}");
            }
        }
    }

    #[test]
    fn all_zero_trace_is_the_minimal_program() {
        // The shrinking contract: a replay that runs out of trace keeps
        // generating (choice 0 everywhere) and terminates.
        for class in [Class::ConstExpr, Class::Defined, Class::Doomed] {
            let mut d = DecisionSource::replay(&[]);
            let case = generate(class, &mut d);
            assert!(!case.source.is_empty());
            assert!(case.source.len() < 400, "minimal program is small");
        }
    }

    #[test]
    fn defined_programs_parse() {
        for seed in 0..50 {
            let mut d = DecisionSource::from_seed(seed);
            let case = generate(Class::Defined, &mut d);
            cundef_semantics::parser::parse(&case.source)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", case.source));
        }
    }
}
