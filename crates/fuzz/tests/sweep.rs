//! Sweep-level integration tests: determinism across jobs and shards,
//! the golden exit-code snapshot, and a bounded clean sweep.

use cundef_fuzz::{run_sweep, SweepConfig};
use std::path::PathBuf;

#[test]
fn sweeps_are_reproducible_across_job_counts() {
    let mut one = SweepConfig::new(42, 120);
    one.jobs = 1;
    let mut eight = SweepConfig::new(42, 120);
    eight.jobs = 8;
    let a = run_sweep(&one);
    let b = run_sweep(&eight);
    assert_eq!(a.render(), b.render(), "render must not depend on --jobs");
    assert_eq!(a.render_exits(), b.render_exits());
}

#[test]
fn shards_partition_the_same_sweep() {
    // Running shards 0/3, 1/3, 2/3 must together observe exactly the
    // cases (and exits) of the unsharded sweep — shard layout cannot
    // change which program any index denotes.
    let full = run_sweep(&SweepConfig::new(7, 90));
    let mut checked = 0;
    let mut exits = std::collections::BTreeMap::new();
    for i in 0..3 {
        let mut cfg = SweepConfig::new(7, 90);
        cfg.shard = Some((i, 3));
        cfg.jobs = 2;
        let part = run_sweep(&cfg);
        checked += part.checked;
        exits.extend(part.exits);
        assert!(
            part.findings.is_empty(),
            "shard {i} diverged where the full sweep did not"
        );
    }
    assert_eq!(checked, full.checked);
    assert_eq!(exits, full.exits);
}

#[test]
fn seed42_exit_codes_match_the_golden_snapshot() {
    // Oracle (c)'s long-term memory: the exit code of every passing
    // defined program in the fixed seed-42 sweep, committed at
    // crates/fuzz/goldens/defined-seed42.txt. A semantics change that
    // shifts any of these exits must be deliberate (regenerate with
    // `cundef fuzz --seed 42 --count 150 --exits`).
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens/defined-seed42.txt");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
    let report = run_sweep(&SweepConfig::new(42, 150));
    assert!(
        report.findings.is_empty(),
        "golden sweep must be divergence-free:\n{}",
        report.render()
    );
    assert_eq!(
        report.render_exits(),
        golden,
        "defined-case exit codes drifted from goldens/defined-seed42.txt"
    );
}

#[test]
fn bounded_sweep_is_clean() {
    // The in-tree smoke sweep: five oracles over 300 fresh cases on a
    // seed the goldens don't use. The CI workflow runs the much larger
    // sweep through the `cundef fuzz` binary.
    let mut cfg = SweepConfig::new(20260808, 300);
    cfg.jobs = 4;
    let report = run_sweep(&cfg);
    assert!(
        report.findings.is_empty(),
        "divergences:\n{}",
        report.render()
    );
    assert_eq!(report.checked, 300);
}
