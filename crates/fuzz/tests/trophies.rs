//! Replay every committed trophy in `trophy-case/` on every test run.
//!
//! The contract (see `cundef_fuzz::trophy`):
//! - `status: fixed` entries are permanent regression tests — the
//!   oracle that once failed on them must pass forever;
//! - `status: known-failing` entries must keep failing with their
//!   recorded category, and the replay demands a flip to `fixed` the
//!   moment the underlying bug is repaired.

use cundef_fuzz::trophy::Trophy;
use std::path::PathBuf;

fn trophy_dir() -> PathBuf {
    // crates/fuzz/tests -> workspace root -> trophy-case
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("trophy-case")
}

#[test]
fn the_trophy_case_is_not_empty() {
    let trophies = Trophy::load_all(&trophy_dir()).expect("trophy case loads");
    assert!(
        !trophies.is_empty(),
        "trophy-case/ should hold the committed fuzz findings"
    );
}

#[test]
fn every_trophy_replays() {
    let trophies = Trophy::load_all(&trophy_dir()).expect("trophy case loads");
    let mut failures = Vec::new();
    for t in &trophies {
        if let Err(e) = t.replay() {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "trophy replay failures:\n  {}",
        failures.join("\n  ")
    );
}

#[test]
fn trophy_pairs_are_complete() {
    // Every .c has an .expected and vice versa — a half-committed trophy
    // is invisible to the replay and therefore forbidden.
    let dir = trophy_dir();
    let mut stems_c = Vec::new();
    let mut stems_exp = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("trophy-case/ exists") {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        if let Some(s) = name.strip_suffix(".expected") {
            stems_exp.push(s.to_string());
        } else if let Some(s) = name.strip_suffix(".c") {
            stems_c.push(s.to_string());
        }
    }
    stems_c.sort();
    stems_exp.sort();
    assert_eq!(
        stems_c, stems_exp,
        "every trophy must be a .c + .expected pair"
    );
}
