/* Signed integer overflow (C11 6.5:5): INT_MAX + 1. */
int main(void) {
    int big = 2147483647;
    int i = 0;
    while (i < 2) {
        big = big + 1;
        i = i + 1;
    }
    return big;
}
