/* Two case labels of one switch with the same constant value
 * (C11 6.8.4.2:3) — a translation-phase finding. The `1 / t` decoy
 * would be the evaluator's division by zero (00002) if this program
 * were ever executed. */
int main(void) {
    int t = 0;
    int decoy = 1 / t;
    switch (t) {
        case 2:
            t = 3;
            break;
        case 1 + 1:
            t = 4;
            break;
        default:
            t = 5;
    }
    return t;
}
