// The C11 6.5:7 character-type escape: unsigned char lvalues may sweep
// any object's representation byte by byte. Reassembling the
// little-endian bytes yields exactly the stored value, so this program
// is fully defined and must exit 0.
int main(void) {
  long l = 258;  // 0x0102, stored little-endian
  unsigned char *p = (unsigned char *)&l;
  long r = 0;
  for (int i = 7; i >= 0; i--) {
    r = (r << 8) + p[i];
  }
  return r == 258 ? 0 : 1;
}
