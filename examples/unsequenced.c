/* The paper's flagship example: two unsequenced side effects on x
 * (C11 6.5:2). kcc reports this as Error: 00016. */
int main(void) {
    int x = 0;
    x = x++ + 1;
    return x;
}
