// Unsigned arithmetic wraps modulo 2^width by definition (C11 6.2.5:9)
// — none of this is undefined behavior, and the checker must run the
// program to completion with exit code 0. A width-naive engine would
// raise a false SignedOverflow on every line below.
int main(void) {
  unsigned int u = 4294967295u;      // UINT_MAX
  u = u + 1u;                        // wraps to 0: defined
  unsigned int big = 2147483647u * 3u;  // wraps: defined
  unsigned int bit = 1u << 31;       // defined for unsigned (6.5.7:4)
  unsigned int down = 0u - 1u;       // wraps to UINT_MAX: defined
  if (u == 0u && big == 2147483645u && bit == 2147483648u && down == 4294967295u) {
    return 0;
  }
  return 1;
}
