// Converting a pointer to a type it is not suitably aligned for is
// undefined at the conversion itself (C11 6.3.2.3:7): byte offset 1 of
// a long can never hold a 4-byte-aligned int. The byte-addressable
// memory model makes the offset — and so the verdict — exact.
int main(void) {
  long l = 0;
  char *base = (char *)&l;     // character pointers have alignment 1
  int *p = (int *)(base + 1);  // Error 00030: misaligned for int
  return *p;
}
