// sizeof (C11 6.5.3.4) against the documented LP64 target: char 1,
// short 2, int 4, long 8, pointers 8, and size_t == unsigned long.
// The operand of sizeof is not evaluated (the division by zero in the
// last test is never reached), and an array designator under sizeof
// does not decay. The program must exit 0.
int main(void) {
  int x = 5;
  long a[3];
  int zero = 0;
  unsigned long total = sizeof(char) + sizeof(short) + sizeof(int) + sizeof(long);
  if (total == 15u
      && sizeof x == 4u
      && sizeof(x + 1L) == 8u      // usual arithmetic conversions: long
      && sizeof(int *) == 8u
      && sizeof a == 24u           // undecayed: 3 * sizeof(long)
      && sizeof(a + 0) == 8u       // decayed: a pointer
      && sizeof(1 / zero) == 4u) { // operand unevaluated: no division
    return 0;
  }
  return 1;
}
