// Narrowing conversions to signed types that cannot represent the value
// are implementation-defined (C11 6.3.1.3:3), NOT undefined: this
// implementation wraps two's-complement and prints a note for each.
// Conversions to _Bool (6.3.1.2) and to unsigned types (6.3.1.3:2) are
// fully defined. The program must exit 0.
int main(void) {
  char c = 300;            // note: wraps to 44
  short s = 70000;         // note: wraps to 4464
  unsigned char u = 300;   // defined: wraps to 44, no note
  _Bool b = 42;            // defined: nonzero becomes 1
  if (c == 44 && s == 4464 && u == 44 && b == 1) {
    return 0;
  }
  return 1;
}
