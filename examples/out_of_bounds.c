/* Out-of-bounds array read (C11 6.5.6:8): the loop runs one element
 * past the end. */
int main(void) {
    int a[4] = {1, 2, 3, 4};
    int sum = 0;
    for (int i = 0; i <= 4; i++) {
        sum += a[i];
    }
    return sum;
}
