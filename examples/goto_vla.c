/* A goto that jumps into the scope of a variable length array
 * (C11 6.8.6.1:1): at the label, `a` is in scope but its size was
 * never evaluated. The translation phase rejects this before any
 * execution — constraint-style static undefinedness, Error: 00075. */
int main(void) {
    int n = 4;
    goto inside;
    {
        int a[n];
inside:
        a[0] = 1;
        return a[0];
    }
}
