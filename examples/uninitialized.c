/* Use of an indeterminate value (C11 6.2.4:6 / 6.2.6.1:5): y is read
 * before anything is stored in it. */
int main(void) {
    int x = 3;
    int y;
    if (x > 10) {
        y = 1;
    }
    return x + y;
}
