/* Same-scope redeclaration with an incompatible type (C11 6.7:3) —
 * caught at translation time, before anything runs. The division by
 * zero on the way to it is a decoy: if the evaluator ever executed
 * this program it would report code 00002 first, so the 00074 report
 * proves the file was statically doomed and never run. */
int main(void) {
    int z = 0;
    int x = 1 / z;
    int *x;
    return 0;
}
