/* free() of a pointer that no allocation function returned
 * (C11 7.22.3.3:2): here, the address of an automatic object. */
int main(void) {
    int x = 7;
    int *p = &x;
    free(p);
    return x;
}
