/* Shift amount not less than the width of the type (C11 6.5.7:3). */
int main(void) {
    int bits = 32;
    return 1 << bits;
}
