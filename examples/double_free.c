/* free() of an already freed allocation (C11 7.22.3.3:2).
 * Note: this subset models memory in int-sized cells, so malloc(2)
 * allocates two ints. */
int main(void) {
    int *p = malloc(2);
    p[0] = 1;
    p[1] = 2;
    free(p);
    free(p);
    return 0;
}
