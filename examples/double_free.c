/* free() of an already freed allocation (C11 7.22.3.3:2).
 * malloc counts bytes, exactly like sizeof. */
int main(void) {
    int *p = malloc(2 * sizeof(int));
    p[0] = 1;
    p[1] = 2;
    free(p);
    free(p);
    return 0;
}
