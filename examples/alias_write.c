// Writing a long object through an int lvalue violates the effective
// type rule (C11 6.5:7) even though the access is aligned and in
// bounds — only character types may alias freely.
int main(void) {
  long l = 42;
  int *p = (int *)&l;  // aligned, so the conversion itself is fine
  *p = 7;              // Error 00033: int lvalue, long object
  return 0;
}
