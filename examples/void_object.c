/* An object declared with the incomplete type void (C11 6.7:7) —
 * no storage can be allocated for it, so translation must reject it.
 * The division by zero above it is a decoy: a dynamic checker would
 * report 00002 first, so seeing only 00082 proves the program was
 * never executed. */
int main(void) {
    int z = 0;
    int decoy = 1 / z;
    void nothing;
    return 0;
}
