/* A fully defined program, for contrast: cundef exits 0 on it. */
int gcd(int a, int b) {
    while (b != 0) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}

int main(void) {
    return gcd(252, 105);
}
