/* A variable length array whose computed size is not positive
 * (C11 6.7.6.2:5). The size is a runtime value, so only a dynamic
 * semantics catches it — the static form (a constant size) is a
 * different catalog entry. */
int main(void) {
    int n = 3 - 3;
    int a[n];
    return 0;
}
