// A partially-initialized wide object: only byte 0 of the long is ever
// written, so the 8-byte read touches seven indeterminate bytes
// (C11 6.2.6.1:5). The per-byte initialization bitmap reports this
// precisely — a cell-granular model would call the whole object
// initialized after the first store.
int main(void) {
  long l;
  char *p = (char *)&l;
  p[0] = 1;        // bytes 1..7 of l stay indeterminate
  return l == 1;   // Error 00028: read touches indeterminate bytes
}
