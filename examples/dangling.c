/* Access to an object outside its lifetime (C11 6.2.4:2): escape()
 * returns the address of a local whose lifetime ends at return. */
int *escape(void) {
    int local = 5;
    return &local;
}

int main(void) {
    int *p = escape();
    return *p;
}
