/* Calling a function with the wrong number of arguments (C11 6.5.2.2:6).
 * Without a prototype in scope this is undefined, not a constraint
 * violation — the callee reads parameters that were never passed. */
int add(int a, int b) {
    return a + b;
}

int main(void) {
    return add(1);
}
