// Shift counts are checked against the width of the *promoted left
// operand* (C11 6.5.7:3): long is 64 bits under LP64, so shifting by
// 32..62 is defined — the decoy shifts below must NOT be reported.
// Shifting by 64 is the real defect (Error 00007 at width 64).
int main(void) {
  long one = 1;
  long hi = one << 40;   // defined at width 64 (decoy for width-32 checkers)
  long top = one << 62;  // still defined
  int count = 64;
  long bad = one << count;  // shift amount 64 >= width 64: undefined
  return (bad == 0 && hi > 0 && top > 0) ? 1 : 0;
}
