/* Dereference of a null pointer (C11 6.5.3.2:4). */
int main(void) {
    int *p = 0;
    return *p;
}
