/* An array declared with a constant, non-positive size (C11 6.7.6.2:1).
 * There is no main here at all: this file can never be executed, which
 * is exactly the workload the translation phase exists for — checking
 * headers and libraries you cannot run. */
int scratch(void) {
    int a[3 - 5];
    a[0] = 1;
    return a[0];
}
