/* A fully defined program using goto, for contrast: both execution
 * engines run the jumps for real (backward gotos form the loop) and
 * cundef exits 0. */
int main(void) {
    int s = 0;
    int i = 0;
again:
    if (i < 10) {
        s = s + i;
        i = i + 1;
        goto again;
    }
    if (s != 45)
        goto fail;
    return 0;
fail:
    return 1;
}
