/* Division by zero (C11 6.5.5:5), reached through data flow rather
 * than a literal `1 / 0` a compiler would warn about. */
int main(void) {
    int n = 10;
    int d = n - 10;
    return n / d;
}
